/**
 * @file
 * Hardware specification of a Dell PowerEdge XE8545 compute node and
 * the builder that instantiates it into a Topology.
 *
 * Defaults follow paper Table II/III exactly:
 *   - 2x AMD EPYC 7763 (8 DDR4-3200 channels each, 3 xGMI links)
 *   - 4x NVIDIA A100 SXM4 40 GB (full NVLink 3.0 mesh, 4 links/pair)
 *   - GPUs 0-1 on CPU0 (PCIe link #1), GPUs 2-3 on CPU1 (link #3)
 *   - 1 ConnectX-6 NIC per CPU (PCIe link #2), 200 Gbps RoCE each
 *   - NVMe drives on PCIe 4.0 x4 (link #0 bifurcated)
 */

#ifndef DSTRAIN_HW_NODE_BUILDER_HH
#define DSTRAIN_HW_NODE_BUILDER_HH

#include <vector>

#include "hw/topology.hh"
#include "util/units.hh"

namespace dstrain {

/** One NVMe drive and the socket its PCIe lanes attach to. */
struct NvmeDriveSpec {
    int socket = 1;              ///< attachment socket (0 or 1)
    Bytes capacity = 3.2e12;     ///< 3.2 TB Intel D7-P5600

    /**
     * Sustained NAND media throughput, shared between reads and
     * writes (the internal constraint behind the controller). Burst
     * traffic absorbed by the drive's DRAM cache bypasses it; see
     * storage/nvme_device.hh.
     */
    Bps media_rate = 3.3 * units::GBps;
};

/** The per-node hardware specification (defaults = XE8545). */
struct NodeSpec {
    // --- compute ------------------------------------------------------
    int sockets = 2;              ///< CPU sockets per node
    int gpus = 4;                 ///< GPUs per node
    Flops gpu_peak_fp16 = 312e12; ///< A100 dense fp16 Tensor Core peak
    Bytes gpu_memory = 40.0 * units::GiB;
    Bytes cpu_memory = 1024.0 * units::GiB;  ///< per node (16 x 64 GB)
    int cpu_cores = 128;          ///< total cores per node (2 x 64)

    // --- interconnect bandwidths (per direction unless noted) ---------
    Bps dram_channel = 25.6 * units::GBps;  ///< half-duplex per channel
    int dram_channels = 8;                  ///< per socket
    Bps xgmi_per_link = 36.0 * units::GBps; ///< 18 GT/s x16
    int xgmi_links = 3;
    Bps pcie_x16 = 32.0 * units::GBps;      ///< PCIe 4.0 x16
    Bps pcie_x4 = 8.0 * units::GBps;        ///< PCIe 4.0 x4 (NVMe)
    Bps nvlink_per_link = 25.0 * units::GBps;
    int nvlink_links_per_pair = 4;
    int nics = 2;                           ///< NICs (round-robin sockets)
    Bps roce_per_dir = 25.0 * units::GBps;  ///< 200 Gbps per NIC

    // --- hop latencies --------------------------------------------------
    SimTime dram_latency = 90e-9;
    SimTime xgmi_latency = 120e-9;
    SimTime pcie_latency = 400e-9;
    SimTime nvlink_latency = 700e-9;
    SimTime roce_latency = 1.3e-6;   ///< NIC to switch, one way

    /**
     * Effective capacity of the IOD crossbar path for *sustained*
     * cross-socket storage streams (per node, both directions
     * pooled). This instantiates the paper's SerDes-contention
     * hypothesis for the constant-pattern NVMe traffic of
     * ZeRO-Infinity; calibrated to Table VI's RAID0-spanning-sockets
     * penalty (config E vs F).
     */
    Bps iod_storage_crossing = 4.7 * units::GBps;

    /**
     * Model the IOD SerDes contention at all (ablation switch).
     * Disabling it answers "what would this cluster do if the CPU's
     * crossbar were ideal?" — see bench/ablation_serdes.
     */
    bool model_serdes_contention = true;

    // --- storage --------------------------------------------------------
    /** Scratch drives; default = 2 on CPU1 (the paper's RAID0 pair). */
    std::vector<NvmeDriveSpec> nvme_drives = {NvmeDriveSpec{1},
                                              NvmeDriveSpec{1}};
};

/**
 * The component ids of one built node, for convenient lookup.
 * Indices follow the spec ordering (gpu[0..], nvme[0..], ...).
 */
struct NodeHandles {
    std::vector<ComponentId> cpus;    ///< one per socket
    std::vector<ComponentId> drams;   ///< one per socket
    std::vector<ComponentId> gpus;
    std::vector<ComponentId> nics;    ///< in NIC-index order
    std::vector<ComponentId> nvmes;   ///< drive controllers
    std::vector<ComponentId> nvme_medias;  ///< media behind each drive

    /** Shared IOD-crossbar resource for cross-socket storage flows. */
    ResourceId iod_crossing = kNoResource;
};

/**
 * Instantiate one node into @p topo.
 *
 * @param topo   target topology.
 * @param node   node index (names and lookups key off it).
 * @param spec   hardware specification.
 * @return handles to the created components.
 */
NodeHandles buildNode(Topology &topo, int node, const NodeSpec &spec);

/** Socket an in-node GPU index attaches to (0-1 -> 0, 2-3 -> 1). */
int gpuSocket(const NodeSpec &spec, int gpu_index);

} // namespace dstrain

#endif // DSTRAIN_HW_NODE_BUILDER_HH
