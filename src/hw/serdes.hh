/**
 * @file
 * The EPYC I/O-die SerDes contention model.
 *
 * Paper Sec. III-C4 observes that traffic whose path crosses *between
 * two sets of x16 I/O SerDes* on the EPYC 7763 I/O die (PCIe<->PCIe,
 * PCIe<->xGMI, xGMI<->xGMI) attains far less bandwidth than traffic
 * between the memory controller and one SerDes set, and hypothesizes
 * contention inside the IOD's crossbar (Infinity Fabric Intra Die).
 * AMD does not disclose the crossbar internals, so — exactly like the
 * paper — we model the effect *empirically*: the capacity of the
 * SerDes-attached hops (PCIe, xGMI) of a route is scaled by a factor
 * chosen from the number and kind of SerDes-to-SerDes crossings
 * along the route. Hops that are not SerDes-attached (DRAM, NVLink,
 * RoCE wire, NVMe media) are unaffected, so a flow whose bottleneck
 * is elsewhere (e.g. NVMe media throughput) sees little penalty —
 * matching the small RAID-spanning penalty of paper Table VI.
 * Calibration targets from the stress tests of paper Fig. 4:
 *
 *   same-socket CPU-RoCE  (0 crossings)           -> 93% of line rate
 *   same-socket GPU-RoCE  (1 PCIe-PCIe crossing)  -> 52%
 *   cross-socket CPU-RoCE (1 xGMI-PCIe crossing)  -> 47%
 *   cross-socket GPU-RoCE (2 crossings)           -> 42%
 *
 * The 93% baseline is the RoCE protocol efficiency (see
 * linkClassEfficiency); the factors below are the *additional*
 * degradation attributed to the IOD.
 */

#ifndef DSTRAIN_HW_SERDES_HH
#define DSTRAIN_HW_SERDES_HH

#include <vector>

namespace dstrain {

/** The interface class on each side of an IOD crossing. */
enum class SerdesSide {
    Pcie,
    Xgmi,
};

/** One SerDes-to-SerDes crossing observed on a route. */
struct SerdesCrossing {
    SerdesSide ingress;
    SerdesSide egress;
};

/**
 * Degradation factor for a route with the given crossings.
 *
 * @return a multiplier in (0, 1]; 1.0 for routes with no
 *         SerDes-to-SerDes crossing.
 */
double serdesDegradation(const std::vector<SerdesCrossing> &crossings);

/** Degradation factor for a single crossing kind (unit-test hook). */
double serdesSingleCrossingFactor(SerdesSide ingress, SerdesSide egress);

} // namespace dstrain

#endif // DSTRAIN_HW_SERDES_HH
