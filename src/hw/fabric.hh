/**
 * @file
 * The fabric layer: parameterized generators for the network that
 * joins the compute nodes.
 *
 * The paper measures exactly one shape — N nodes behind a single
 * non-blocking Ethernet switch (Fig. 2-a) — and that stays the
 * default, built bit-identically to the original hard-wired code.
 * The generators added here extend the model to the shapes large
 * training clusters actually deploy:
 *
 *   - `single`      one non-blocking switch (the paper's SN3700).
 *   - `fat-tree`    k-ary three-stage Clos: k/2 edge + k/2 aggregation
 *                   switches per pod, (k/2)^2 cores, configurable
 *                   edge oversubscription.
 *   - `rail`        rail-optimized: one switch per local NIC index;
 *                   NIC r of every node uplinks to rail switch r
 *                   (the DGX-style collective fabric).
 *   - `spine-leaf`  two-stage Clos: nodes block-assigned to leaves,
 *                   full bipartite leaf <-> spine trunking.
 *
 * Every generator labels failure domains: each node gets a rack index
 * (its edge/leaf switch), rail fabrics get rail indices, and every
 * switch is addressable by ordinal — all consumed by FaultPlan
 * targets (`rack<k>`, `rail<r>`, `sw<j>`).
 *
 * Multi-stage fabrics create equal-cost path diversity; the Router's
 * deterministic ECMP (see hw/routing.hh) spreads flows across it.
 */

#ifndef DSTRAIN_HW_FABRIC_HH
#define DSTRAIN_HW_FABRIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/topology.hh"
#include "util/config_error.hh"
#include "util/units.hh"

namespace dstrain {

/** The fabric shapes dstrain can generate. */
enum class FabricKind {
    SingleSwitch,  ///< one non-blocking switch (the paper's default)
    FatTree,       ///< k-ary three-stage Clos with pods and cores
    Rail,          ///< one switch per local NIC index (rail-optimized)
    SpineLeaf,     ///< two-stage leaf/spine Clos
};

/** Spec spelling of a fabric kind (`single`, `fat-tree`, ...). */
const char *fabricKindName(FabricKind kind);

/** The fabric specification (defaults = the paper's single switch). */
struct FabricSpec {
    FabricKind kind = FabricKind::SingleSwitch;

    // --- fat-tree -----------------------------------------------------
    /** Switch radix / pod count; must be even and >= 2. */
    int fat_tree_k = 4;

    /**
     * Edge oversubscription: hosts per edge switch =
     * round(k/2 x oversubscription). 1.0 = full bisection.
     */
    double oversubscription = 1.0;

    // --- spine-leaf ---------------------------------------------------
    int leaves = 2;   ///< leaf switches (nodes block-assigned)
    int spines = 2;   ///< spine switches (full bipartite trunking)

    // --- trunks -------------------------------------------------------
    /** Switch-to-switch trunk rate; 0 = the host uplink rate. */
    Bps trunk_per_dir = 0.0;

    /** Switch-to-switch trunk latency; 0 = the host uplink latency. */
    SimTime trunk_latency = 0.0;

    // --- ECMP ---------------------------------------------------------
    /** Spread flows over equal-cost paths (deterministic hash). */
    bool ecmp = true;

    /** Seed mixed into the ECMP path-selection hash. */
    std::uint64_t ecmp_seed = 1;

    /** Equal-cost paths enumerated per endpoint pair. */
    int max_paths = 8;

    /** Structural checks; empty result = valid. */
    std::vector<ConfigError> validate() const;

    /** Round-trippable spec form, e.g. "fat-tree:k=8,oversub=2". */
    std::string str() const;
};

/** One node's uplink attachment, as the fabric generators see it. */
struct FabricHost {
    std::vector<ComponentId> nics;  ///< in local NIC-index order
    Bps roce_per_dir = 0.0;         ///< per-direction uplink rate
    SimTime roce_latency = 0.0;     ///< NIC-to-switch latency
};

/** What a generator built: switches and failure-domain labels. */
struct FabricInfo {
    /** All switch components, in `sw<ordinal>` order. */
    std::vector<ComponentId> switches;

    /** Rack (edge/leaf domain) index per node; all 0 when flat. */
    std::vector<int> rack_of_node;

    /** Rail count (Rail fabric); 0 when the fabric has no rails. */
    int rails = 0;

    /** Number of distinct rack labels. */
    int rackCount() const;
};

/**
 * Instantiate the fabric described by @p spec into @p topo,
 * connecting the NICs of @p hosts.
 *
 * Must run after every node is built (switch ordinals and resource
 * ids follow the construction order). The single-switch generator
 * reproduces the original hard-wired topology byte for byte: no
 * switch at all for one node, `sw0` plus one duplex RoCE uplink per
 * NIC otherwise.
 */
FabricInfo buildFabric(Topology &topo, const FabricSpec &spec,
                       const std::vector<FabricHost> &hosts);

/**
 * Parse a CLI fabric spec:
 *
 *   single
 *   fat-tree:k=8[,oversub=2]
 *   rail
 *   spine-leaf:leaves=4,spines=2
 *
 * Any form also accepts `ecmp=on|off`, `seed=<n>` and `paths=<n>`
 * keys. Problems are appended to @p errors (field "fabric"); the
 * returned spec contains what did parse.
 */
FabricSpec parseFabricSpec(const std::string &text,
                           std::vector<ConfigError> *errors);

} // namespace dstrain

#endif // DSTRAIN_HW_FABRIC_HH
