/**
 * @file
 * Implementation of the SerDes contention model.
 */

#include "hw/serdes.hh"

#include <algorithm>

namespace dstrain {

namespace {

// Calibrated against paper Fig. 4. The factor scales the capacity of
// the route's slowest SerDes-attached hop (PCIe x16 at 32 GBps/dir
// with 0.82 protocol efficiency = 26.2 GBps effective).
//
// Single crossing (e.g. host memory to a neighboring socket's NVMe
// drive): moderate degradation.
constexpr double kOnePciePcie = 0.495;
constexpr double kOnePcieXgmi = 0.448;
constexpr double kOneXgmiXgmi = 0.47;

// End-to-end RDMA paths cross an IOD on *both* ends. Calibrated so
// the four-instance stress test of Sec. III-C lands on the measured
// fractions of the RoCE line rate (two streams per NIC):
//   2x PCIe-PCIe crossings (same-socket GPUDirect):
//       26.2 * 0.248 = 6.5 GBps/flow -> 13.0/NIC = 52% of 25 GBps.
//   2x xGMI-PCIe crossings (cross-socket host memory):
//       26.2 * 0.224 = 5.87         -> 11.75   = 47%.
//   4 crossings (cross-socket GPUDirect):
//       26.2 * 0.200 = 5.25         -> 10.5    = 42%.
constexpr double kTwoPciePcie = 0.248;
constexpr double kTwoWithXgmi = 0.224;
constexpr double kManyCrossings = 0.200;

} // namespace

double
serdesSingleCrossingFactor(SerdesSide ingress, SerdesSide egress)
{
    if (ingress == SerdesSide::Pcie && egress == SerdesSide::Pcie)
        return kOnePciePcie;
    if (ingress == SerdesSide::Xgmi && egress == SerdesSide::Xgmi)
        return kOneXgmiXgmi;
    return kOnePcieXgmi;
}

double
serdesDegradation(const std::vector<SerdesCrossing> &crossings)
{
    if (crossings.empty())
        return 1.0;
    if (crossings.size() == 1) {
        const SerdesCrossing &c = crossings.front();
        return serdesSingleCrossingFactor(c.ingress, c.egress);
    }
    if (crossings.size() >= 3)
        return kManyCrossings;

    // Exactly two crossings: an xGMI leg anywhere costs more than a
    // pure PCIe-PCIe pair (paper Fig. 4: 47% vs 52%).
    for (const SerdesCrossing &c : crossings) {
        if (c.ingress == SerdesSide::Xgmi ||
            c.egress == SerdesSide::Xgmi) {
            return kTwoWithXgmi;
        }
    }
    return kTwoPciePcie;
}

} // namespace dstrain
