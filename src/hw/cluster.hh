/**
 * @file
 * The cluster: one or more XE8545-style nodes joined by an Ethernet
 * switch carrying RoCE traffic (paper Fig. 2-a), plus convenient
 * component lookup and the router.
 */

#ifndef DSTRAIN_HW_CLUSTER_HH
#define DSTRAIN_HW_CLUSTER_HH

#include <memory>
#include <vector>

#include "hw/node_builder.hh"
#include "hw/routing.hh"
#include "hw/topology.hh"

namespace dstrain {

/** The whole-cluster specification. */
struct ClusterSpec {
    int nodes = 1;        ///< number of compute nodes
    NodeSpec node;        ///< per-node hardware (identical nodes)

    /** Total GPUs in the cluster. */
    int totalGpus() const { return nodes * node.gpus; }
};

/**
 * A built cluster: owns the topology, per-node handles, the switch,
 * and a router. Construction is the only mutation; afterwards only
 * resource rate logs change.
 */
class Cluster
{
  public:
    /** Build the cluster described by @p spec. */
    explicit Cluster(const ClusterSpec &spec);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    const ClusterSpec &spec() const { return spec_; }
    Topology &topology() { return topo_; }
    const Topology &topology() const { return topo_; }
    const Router &router() const { return *router_; }

    int nodeCount() const { return spec_.nodes; }

    /** Handles for one node. */
    const NodeHandles &node(int n) const;

    /** The switch component (kNoComponent for single-node clusters). */
    ComponentId ethernetSwitch() const { return switch_; }

    // --- flattened global indices --------------------------------------

    /** GPU component by global rank (node-major order). */
    ComponentId gpuByRank(int rank) const;

    /** Global rank of a GPU component id. */
    int rankOfGpu(ComponentId gpu) const;

    /** Node index of a global rank. */
    int nodeOfRank(int rank) const { return rank / spec_.node.gpus; }

    /** In-node GPU index of a global rank. */
    int localOfRank(int rank) const { return rank % spec_.node.gpus; }

    /** All GPU component ids in rank order. */
    const std::vector<ComponentId> &allGpus() const { return all_gpus_; }

  private:
    ClusterSpec spec_;
    Topology topo_;
    std::vector<NodeHandles> nodes_;
    std::vector<ComponentId> all_gpus_;
    ComponentId switch_ = kNoComponent;
    std::unique_ptr<Router> router_;
};

} // namespace dstrain

#endif // DSTRAIN_HW_CLUSTER_HH
