/**
 * @file
 * The cluster: a set of compute nodes (a homogeneous template or
 * heterogeneous node groups) joined by a generated fabric — the
 * paper's single Ethernet switch by default (Fig. 2-a), or a
 * fat-tree / rail / spine-leaf fabric (see hw/fabric.hh) — plus
 * convenient component lookup and the router.
 */

#ifndef DSTRAIN_HW_CLUSTER_HH
#define DSTRAIN_HW_CLUSTER_HH

#include <memory>
#include <vector>

#include "hw/fabric.hh"
#include "hw/node_builder.hh"
#include "hw/routing.hh"
#include "hw/topology.hh"

namespace dstrain {

/** A run of identical nodes inside a heterogeneous cluster. */
struct NodeGroup {
    int count = 0;   ///< nodes in this group
    NodeSpec node;   ///< their hardware
};

/** The whole-cluster specification. */
struct ClusterSpec {
    int nodes = 1;        ///< number of compute nodes
    NodeSpec node;        ///< per-node hardware template

    /**
     * Heterogeneous override: when non-empty, the cluster is the
     * concatenation of these groups (in order) and `nodes`/`node`
     * describe only the template for solver defaults.
     */
    std::vector<NodeGroup> groups;

    /** The network joining the nodes (default: one switch). */
    FabricSpec fabric;

    /** Number of nodes (groups when present, else `nodes`). */
    int nodeCount() const;

    /** The hardware of node @p n. */
    const NodeSpec &nodeSpecOf(int n) const;

    /** Total GPUs in the cluster. */
    int totalGpus() const;
};

/**
 * Parse a CLI heterogeneous-nodes spec: semicolon-separated groups of
 *
 *   <count>:gpus=<g>,nics=<n>[,roce=<Gbps>][,gpu-mem=<GiB>]
 *
 * Each group starts from @p base and applies its overrides, e.g.
 * "2:gpus=4,nics=2;2:gpus=8,nics=4,roce=50". Problems are appended
 * to @p errors (field "nodes-spec").
 */
std::vector<NodeGroup> parseNodesSpec(const std::string &text,
                                      const NodeSpec &base,
                                      std::vector<ConfigError> *errors);

/**
 * A built cluster: owns the topology, per-node handles, the fabric
 * switches, and a router. Construction is the only mutation;
 * afterwards only resource rate logs change.
 */
class Cluster
{
  public:
    /** Build the cluster described by @p spec. */
    explicit Cluster(const ClusterSpec &spec);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    const ClusterSpec &spec() const { return spec_; }
    Topology &topology() { return topo_; }
    const Topology &topology() const { return topo_; }
    const Router &router() const { return *router_; }

    /** Mutable router access (degraded-mode toggles only). */
    Router &router() { return *router_; }

    int nodeCount() const { return static_cast<int>(nodes_.size()); }

    /** Handles for one node. */
    const NodeHandles &node(int n) const;

    /** The hardware spec of node @p n (group-aware). */
    const NodeSpec &nodeSpec(int n) const;

    /** GPUs of node @p n. */
    int gpusOfNode(int n) const;

    /**
     * The first fabric switch (kNoComponent when the fabric has
     * none, i.e. a single-node single-switch cluster).
     */
    ComponentId ethernetSwitch() const
    {
        return fabric_.switches.empty() ? kNoComponent
                                        : fabric_.switches.front();
    }

    /** All fabric switches, in `sw<ordinal>` order. */
    const std::vector<ComponentId> &switches() const
    {
        return fabric_.switches;
    }

    /** What the fabric generator built (failure-domain labels). */
    const FabricInfo &fabric() const { return fabric_; }

    /** Rack (edge/leaf failure domain) of node @p n. */
    int rackOfNode(int n) const;

    // --- flattened global indices --------------------------------------

    /** GPU component by global rank (node-major order). */
    ComponentId gpuByRank(int rank) const;

    /** Global rank of a GPU component id. */
    int rankOfGpu(ComponentId gpu) const;

    /** Node index of a global rank (a table lookup, group-aware). */
    int nodeOfRank(int rank) const;

    /** In-node GPU index of a global rank. */
    int localOfRank(int rank) const;

    /** Global rank of node @p n's local GPU @p local. */
    int rankOf(int n, int local) const;

    /** All GPU component ids in rank order. */
    const std::vector<ComponentId> &allGpus() const { return all_gpus_; }

  private:
    ClusterSpec spec_;
    Topology topo_;
    std::vector<NodeHandles> nodes_;
    std::vector<ComponentId> all_gpus_;
    std::vector<int> node_of_rank_;   ///< rank -> node
    std::vector<int> local_of_rank_;  ///< rank -> in-node GPU index
    std::vector<int> rank_base_;      ///< node -> its first rank
    FabricInfo fabric_;
    std::unique_ptr<Router> router_;
};

} // namespace dstrain

#endif // DSTRAIN_HW_CLUSTER_HH
