/**
 * @file
 * Route computation over the topology graph.
 *
 * Routes are shortest paths (by hop count, deterministic id
 * tie-break) where only CPU IODs, NICs and switches may act as
 * transit vertices — GPUs, DRAM pools and NVMe drives are endpoints
 * only. This reproduces the paths real traffic takes on the XE8545:
 * GPU peers talk over direct NVLink, GPU-to-remote traffic goes
 * GPU -> PCIe -> CPU -> PCIe -> NIC -> switch -> ... (GPUDirect RDMA:
 * no DRAM hop), and cross-socket NIC access crosses the xGMI links.
 *
 * Multi-stage fabrics (fat-tree, spine-leaf; see hw/fabric.hh) offer
 * several equal-cost shortest paths between a pair of endpoints. The
 * router enumerates them and picks one per flow with deterministic
 * ECMP: a hash of (src, dst, flow key, seed) — the same endpoints,
 * key and seed always select the same path, so runs stay
 * bit-reproducible. On a fabric with exactly one shortest path
 * (notably the default single switch) ECMP degenerates to the plain
 * route and changes nothing.
 *
 * Each computed route carries the SerDes-crossing analysis of
 * hw/serdes.hh and a resulting per-flow rate cap.
 */

#ifndef DSTRAIN_HW_ROUTING_HH
#define DSTRAIN_HW_ROUTING_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hw/serdes.hh"
#include "hw/topology.hh"

namespace dstrain {

/** A computed path through the topology. */
struct Route {
    /** Half-link ids, in traversal order. Empty = no route. */
    std::vector<HalfLinkId> hops;

    /** Sum of hop latencies. */
    SimTime latency = 0.0;

    /** SerDes-to-SerDes crossings at intermediate CPU IODs. */
    std::vector<SerdesCrossing> crossings;

    /** serdesDegradation(crossings), cached. */
    double serdes_factor = 1.0;

    /**
     * The maximum rate a single flow can attain on this route when
     * uncontended: the minimum over hops of capacity x class
     * efficiency, where SerDes-attached hops (PCIe/xGMI) are
     * additionally scaled by the SerDes degradation factor when the
     * route has crossings.
     */
    Bps rate_cap = 0.0;

    /** True when the route connects the endpoints. */
    bool valid() const { return !hops.empty(); }
};

/** ECMP behavior of a Router (defaults match hw/fabric.hh). */
struct EcmpConfig {
    bool enabled = true;          ///< spread over equal-cost paths
    std::uint64_t seed = 1;       ///< mixed into the selection hash
    int max_paths = 8;            ///< paths enumerated per pair
};

/**
 * Computes and caches routes over a fixed topology.
 *
 * The router must outlive no topology mutation: build the topology
 * fully, then construct the router.
 */
class Router
{
  public:
    /**
     * @param topo the built topology.
     * @param model_serdes apply the SerDes degradation to route caps
     *        (crossings are still *reported* either way).
     * @param ecmp equal-cost multipath behavior.
     */
    explicit Router(const Topology &topo, bool model_serdes = true,
                    EcmpConfig ecmp = EcmpConfig{});

    /**
     * Shortest route from @p src to @p dst (the BFS-first path, no
     * ECMP spreading).
     *
     * @param src source component (traffic origin).
     * @param dst destination component.
     * @return the route; fatal() if no route exists (a topology
     *         configuration error).
     */
    const Route &route(ComponentId src, ComponentId dst) const;

    /**
     * Every equal-cost shortest path from @p src to @p dst, in
     * deterministic (adjacency-order DFS) order, capped at the
     * configured max_paths. When exactly one shortest path exists it
     * is the plain route().
     */
    const std::vector<Route> &equalCostRoutes(ComponentId src,
                                              ComponentId dst) const;

    /**
     * The route a flow keyed @p flow_key takes from @p src to
     * @p dst: the plain route() when ECMP is off or only one
     * shortest path exists, otherwise the equal-cost path selected
     * by hashing (src, dst, flow_key, seed).
     */
    const Route &routeForFlow(ComponentId src, ComponentId dst,
                              std::uint64_t flow_key) const;

    /**
     * As routeForFlow(), but forces the path through every component
     * of @p waypoints, in order (the concatenation of the per-segment
     * selections). Used for NIC pinning in multi-channel collectives
     * and for fault reroutes. An empty waypoint list is a plain
     * routeForFlow(src, dst, flow_key).
     */
    Route routeThrough(ComponentId src,
                       const std::vector<ComponentId> &waypoints,
                       ComponentId dst,
                       std::uint64_t flow_key = 0) const;

    /** routeThrough() with a single waypoint. */
    Route routeVia(ComponentId src, ComponentId via,
                   ComponentId dst) const;

    /** routeThrough() with two waypoints. */
    Route routeVia2(ComponentId src, ComponentId via_a,
                    ComponentId via_b, ComponentId dst) const;

    const EcmpConfig &ecmp() const { return ecmp_; }

    /**
     * Degraded-mode routing (the resilience layer,
     * net/resilience.hh): when on, route computations skip edges
     * whose resource capacity is currently zero — a hard-failed link
     * no longer attracts new shortest paths. When every path to a
     * destination is cut the router falls back to the healthy-
     * topology shortest path (the flow launches and parks, exactly
     * the stale-FIB behavior of a real fabric mid-partition) instead
     * of panicking. Off (the default), capacities never influence
     * path choice and behavior is bit-identical to the legacy
     * router.
     */
    void setAvoidDeadLinks(bool on) { avoid_dead_ = on; }

    /** Whether degraded-mode dead-link avoidance is on. */
    bool avoidDeadLinks() const { return avoid_dead_; }

    /**
     * Drop every cached route, ECMP enumeration and BFS tree so the
     * next computation sees the current capacities. Called by the
     * ResilienceCoordinator when a routing-reconvergence window
     * closes; cheap relative to the reconvergence delay it models.
     * The structural navigation arrays survive (the graph itself
     * never mutates).
     */
    void invalidateRouteCaches() const;

    /** Cache flushes so far (test/diagnostic hook). */
    std::uint64_t cacheInvalidations() const { return invalidations_; }

  private:
    /**
     * The BFS shortest-path tree from one source, shared by every
     * destination: first-visit in-edge (via) and hop count (dist)
     * per component. Non-transit components are recorded when first
     * reached but never expanded — exactly how a per-destination BFS
     * treats them — so the via-chain and the level assignment for
     * any dst are bit-identical to a dedicated BFS toward that dst.
     * Computing it once per *source* instead of once per (src, dst)
     * pair is what keeps route-cache misses cheap on generated
     * fabrics, where a wave of flows touches thousands of distinct
     * pairs but only a few hundred sources.
     *
     * Two build shortcuts, both invisible in the outputs:
     *
     *   * The BFS stops the moment the requested dst is assigned.
     *     FIFO order finalizes levels monotonically, so everything a
     *     reader consults — the via-chain (all at levels below
     *     dist[dst]) and the equal-cost DAG interior (same bound) —
     *     already holds its final value; deeper levels are only ever
     *     read through the reaches() guard, where "unassigned" and
     *     "assigned but failing the DAG level check" coincide. A
     *     truncated tree answers any dst it reached; `complete`
     *     marks trees whose BFS exhausted the queue and therefore
     *     answer every dst (including "unreachable").
     *
     *   * Entries are validity-stamped per build (epoch counter)
     *     instead of clearing the via/dist arrays each time, saving
     *     two full-array writes per source on ~10^4-component
     *     fabrics. via/dist are only meaningful where
     *     stamp[v] == epoch; readers go through reaches().
     */
    struct SourceTree {
        std::vector<HalfLinkId> via;
        std::vector<int> dist;
        std::vector<std::uint32_t> stamp;
        std::uint32_t epoch = 0;
        bool complete = false;

        bool reaches(std::size_t v) const
        {
            return stamp[v] == epoch;
        }
    };

    const SourceTree &sourceTree(ComponentId src,
                                 ComponentId dst) const;

    /**
     * Dense navigation arrays over the (immutable) topology, built
     * lazily on the first traversal: CSR adjacency in the exact order
     * of Topology::outgoing(), reverse CSR adjacency in half-link id
     * order, flat per-edge endpoint arrays, and a transit bitmap.
     *
     * The BFS/DFS hot loops run over these instead of chasing
     * per-component vectors and looking up kinds through Component
     * records (whose embedded name strings drag an extra cache line
     * into every edge visit). Traversal order is exactly the order
     * the plain accessors produce, so every computed route — and
     * every ECMP path list the selection hash indexes into — is
     * bit-identical to the naive walk.
     */
    struct Nav {
        std::vector<std::uint32_t> out_begin;  ///< size n+1, CSR offsets
        std::vector<HalfLinkId> out_edge;      ///< grouped by `from`
        std::vector<ComponentId> out_to;       ///< `to` of out_edge[k]
        std::vector<std::uint32_t> in_begin;   ///< size n+1, CSR offsets
        std::vector<HalfLinkId> in_edge;       ///< grouped by `to`
        std::vector<ComponentId> in_from;      ///< `from` of in_edge[k]
        std::vector<std::uint8_t> transit;     ///< may forward traffic
    };

    const Nav &nav() const;

    /**
     * Hop count from every component *to* @p dst over transit-only
     * interior nodes (BFS from dst across reversed edges). Combined
     * with sourceTree(src).dist it prunes the equal-cost DFS to the
     * exact src->dst shortest-path DAG: v lies on a shortest path iff
     * dist[v] + distTo[v] == dist[dst]. Cached per destination for
     * the same reason sourceTree() is cached per source.
     */
    const std::vector<int> &distToDst(ComponentId dst) const;

    Route computeRoute(ComponentId src, ComponentId dst) const;

    /**
     * One ECMP cache slot: the enumerated equal-cost paths plus a
     * per-path "analysis ran" flag. Enumeration stores hop lists
     * only; the crossing/latency/cap analysis (finishRoute) runs
     * lazily, the first time a path is actually selected — on dense
     * fabrics a pair enumerates up to max_paths routes but a flow
     * consumes exactly one, and finishRoute is a pure function of
     * the hop list, so deferring it changes no route anyone reads.
     */
    struct EcmpEntry {
        std::vector<Route> paths;
        std::vector<unsigned char> done;
    };

    EcmpEntry &ecmpEntry(ComponentId src, ComponentId dst) const;
    const Route &finishedPath(EcmpEntry &e, std::size_t i) const;

    /**
     * Enumerate the shortest-path DAG into explicit paths (hop
     * lists only; see EcmpEntry for the deferred analysis).
     */
    std::vector<Route> computeEqualCost(ComponentId src,
                                        ComponentId dst) const;

    /** Analyze crossings/latency/cap of a hop sequence. */
    Route finishRoute(std::vector<HalfLinkId> hops) const;

    /** Is @p hid's resource at capacity zero right now? */
    bool edgeDead(HalfLinkId hid) const;

    /**
     * Shortest path ignoring capacities (a dedicated, cache-free
     * BFS): the degraded-mode fallback when the live topology has no
     * surviving path. Kept off the caches so it cannot poison a
     * filtered tree with unfiltered levels.
     */
    Route staleRoute(ComponentId src, ComponentId dst) const;

    static std::uint64_t cacheKey(ComponentId src, ComponentId dst)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(dst);
    }

    const Topology &topo_;
    bool model_serdes_ = true;
    EcmpConfig ecmp_;
    /** Degraded mode: skip capacity-zero edges (see setAvoidDeadLinks). */
    bool avoid_dead_ = false;
    mutable std::uint64_t invalidations_ = 0;
    /**
     * Sparse route caches. Node-based maps keep returned references
     * stable across later insertions; sparseness matters because a
     * generated fabric can reach thousands of components, where a
     * dense n^2 table would dwarf the topology itself.
     */
    mutable std::unordered_map<std::uint64_t, Route> cache_;
    mutable std::unordered_map<std::uint64_t, EcmpEntry> ecmp_cache_;
    /**
     * Single-slot forward-tree scratch. Finished routes are cached
     * per pair above, so a source tree is only re-read while the
     * router works through routes from the same source — which
     * arrive consecutively in every traffic pattern we generate.
     * Keeping exactly the latest tree (and reusing its buffers)
     * serves that pattern as well as a per-source map, without
     * retaining ~2 ints per component per distinct source: on a
     * generated fabric a wave of flows touches hundreds of sources
     * once each, and a map burns megabytes of fresh pages per run on
     * trees that are never read again. Reverse distances stay in a
     * map (below): destination fan-in is the common shape — many
     * sources target few destinations, interleaved — so per-dst
     * reuse is real and the retained vector is half a tree.
     */
    mutable SourceTree tree_scratch_;
    mutable ComponentId tree_src_ = kNoComponent;
    mutable std::vector<ComponentId> tree_queue_;
    mutable std::unordered_map<ComponentId, std::vector<int>>
        rev_dist_cache_;
    /** See Nav; empty out_begin means "not built yet". */
    mutable Nav nav_;
};

} // namespace dstrain

#endif // DSTRAIN_HW_ROUTING_HH
