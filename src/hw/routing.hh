/**
 * @file
 * Route computation over the topology graph.
 *
 * Routes are shortest paths (by hop count, deterministic id
 * tie-break) where only CPU IODs, NICs and the switch may act as
 * transit vertices — GPUs, DRAM pools and NVMe drives are endpoints
 * only. This reproduces the paths real traffic takes on the XE8545:
 * GPU peers talk over direct NVLink, GPU-to-remote traffic goes
 * GPU -> PCIe -> CPU -> PCIe -> NIC -> switch -> ... (GPUDirect RDMA:
 * no DRAM hop), and cross-socket NIC access crosses the xGMI links.
 *
 * Each computed route carries the SerDes-crossing analysis of
 * hw/serdes.hh and a resulting per-flow rate cap.
 */

#ifndef DSTRAIN_HW_ROUTING_HH
#define DSTRAIN_HW_ROUTING_HH

#include <vector>

#include "hw/serdes.hh"
#include "hw/topology.hh"

namespace dstrain {

/** A computed path through the topology. */
struct Route {
    /** Half-link ids, in traversal order. Empty = no route. */
    std::vector<HalfLinkId> hops;

    /** Sum of hop latencies. */
    SimTime latency = 0.0;

    /** SerDes-to-SerDes crossings at intermediate CPU IODs. */
    std::vector<SerdesCrossing> crossings;

    /** serdesDegradation(crossings), cached. */
    double serdes_factor = 1.0;

    /**
     * The maximum rate a single flow can attain on this route when
     * uncontended: the minimum over hops of capacity x class
     * efficiency, where SerDes-attached hops (PCIe/xGMI) are
     * additionally scaled by the SerDes degradation factor when the
     * route has crossings.
     */
    Bps rate_cap = 0.0;

    /** True when the route connects the endpoints. */
    bool valid() const { return !hops.empty(); }
};

/**
 * Computes and caches routes over a fixed topology.
 *
 * The router must outlive no topology mutation: build the topology
 * fully, then construct the router.
 */
class Router
{
  public:
    /**
     * @param topo the built topology.
     * @param model_serdes apply the SerDes degradation to route caps
     *        (crossings are still *reported* either way).
     */
    explicit Router(const Topology &topo, bool model_serdes = true);

    /**
     * Shortest route from @p src to @p dst.
     *
     * @param src source component (traffic origin).
     * @param dst destination component.
     * @return the route; fatal() if no route exists (a topology
     *         configuration error).
     */
    const Route &route(ComponentId src, ComponentId dst) const;

    /**
     * As route(), but forces the path through every component of
     * @p waypoints, in order (the concatenation of the cached
     * shortest-path segments between consecutive stops). Used for NIC
     * pinning in multi-channel collectives and for fault reroutes.
     * An empty waypoint list is a plain route(src, dst).
     */
    Route routeThrough(ComponentId src,
                       const std::vector<ComponentId> &waypoints,
                       ComponentId dst) const;

    /** routeThrough() with a single waypoint. */
    Route routeVia(ComponentId src, ComponentId via,
                   ComponentId dst) const;

    /** routeThrough() with two waypoints. */
    Route routeVia2(ComponentId src, ComponentId via_a,
                    ComponentId via_b, ComponentId dst) const;

  private:
    Route computeRoute(ComponentId src, ComponentId dst) const;

    /** Analyze crossings/latency/cap of a hop sequence. */
    Route finishRoute(std::vector<HalfLinkId> hops) const;

    const Topology &topo_;
    bool model_serdes_ = true;
    /** Dense cache indexed [src * n + dst]; empty Route = not yet. */
    mutable std::vector<Route> cache_;
    mutable std::vector<bool> cached_;
};

} // namespace dstrain

#endif // DSTRAIN_HW_ROUTING_HH
