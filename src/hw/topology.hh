/**
 * @file
 * The cluster topology graph: components (CPU IODs, DRAM pools, GPUs,
 * NICs, NVMe drives, the Ethernet switch) connected by half-links
 * that reference bandwidth resources.
 *
 * A full-duplex interconnect contributes two half-links backed by two
 * independent resources (one per direction); a half-duplex
 * interconnect (DRAM) contributes two half-links backed by one shared
 * resource. Routes are sequences of half-links; the flow scheduler
 * contends flows on the referenced resources.
 */

#ifndef DSTRAIN_HW_TOPOLOGY_HH
#define DSTRAIN_HW_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/link.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace dstrain {

/**
 * Aggregate observability counters of the telemetry engine across a
 * topology's rate logs, in the spirit of FlowScheduler::Stats.
 */
struct TelemetryStats {
    std::uint64_t segments_retained = 0;  ///< closed segments held
    std::uint64_t stream_buckets = 0;     ///< streaming buckets in use
    std::uint64_t buckets_touched = 0;    ///< bucket deposits performed
    std::uint64_t memory_bytes = 0;       ///< heap bytes of log state
};

/** Identifies a component (graph vertex) inside a Topology. */
using ComponentId = int;

/** An invalid/absent component id. */
inline constexpr ComponentId kNoComponent = -1;

/** The kinds of hardware components dstrain models. */
enum class ComponentKind {
    CpuIod,     ///< one CPU socket's I/O die (routing hub)
    DramPool,   ///< the DRAM attached to one socket
    Gpu,        ///< one GPU (compute + HBM endpoint)
    Nic,        ///< one network interface card
    NvmeDrive,  ///< one NVMe SSD (controller/PCIe endpoint)
    NvmeMedia,  ///< the NAND media behind one NVMe controller
    Switch,     ///< the cluster Ethernet switch (non-blocking)
};

/** Human-readable component-kind name. */
const char *componentKindName(ComponentKind kind);

/** One vertex of the topology graph. */
struct Component {
    ComponentId id = kNoComponent;
    ComponentKind kind = ComponentKind::CpuIod;
    std::string name;     ///< e.g. "n0.gpu2"
    int node = -1;        ///< node index; -1 for the switch
    int socket = -1;      ///< socket within node; -1 if n/a
    int index = -1;       ///< per-kind index within the node
};

/** Identifies a half-link (directed edge) inside a Topology. */
using HalfLinkId = int;

/**
 * A directed edge of the graph: traffic from one component to
 * another, consuming capacity on `resource`.
 */
struct HalfLink {
    HalfLinkId id = -1;
    ResourceId resource = kNoResource;
    ComponentId from = kNoComponent;
    ComponentId to = kNoComponent;
    PortKind fromPort = PortKind::Device;  ///< attach kind at `from`
    PortKind toPort = PortKind::Device;    ///< attach kind at `to`
    LinkClass cls = LinkClass::Dram;
    SimTime latency = 0.0;  ///< propagation + hop latency
};

/**
 * The topology graph. Built once per experiment by a node builder,
 * then treated as read-only structure (resource rate logs are the
 * only mutable state, updated by the flow scheduler).
 */
class Topology
{
  public:
    Topology() = default;
    Topology(const Topology &) = delete;
    Topology &operator=(const Topology &) = delete;
    Topology(Topology &&) = default;
    Topology &operator=(Topology &&) = default;

    // --- construction -------------------------------------------------

    /**
     * Pre-size the graph arrays (a growth hint, not a limit).
     * Resource records embed strings and a RateLog, so letting the
     * vectors double repeatedly while a large cluster streams in
     * move-constructs every record O(log n) times; builders that know
     * their rough footprint call this once instead.
     */
    void reserve(std::size_t components, std::size_t resources,
                 std::size_t half_links)
    {
        components_.reserve(components);
        adjacency_.reserve(components);
        resources_.reserve(resources);
        half_links_.reserve(half_links);
    }

    /** Add a component; returns its id. */
    ComponentId addComponent(ComponentKind kind, std::string name,
                             int node, int socket, int index);

    /** Add a bandwidth resource; returns its id. */
    ResourceId addResource(LinkClass cls, Bps capacity, std::string label,
                           int node, int socket);

    /** Add a directed edge backed by @p resource. */
    HalfLinkId addHalfLink(ResourceId resource, ComponentId from,
                           ComponentId to, PortKind from_port,
                           PortKind to_port, LinkClass cls,
                           SimTime latency);

    /**
     * Convenience: add a full-duplex link (two half-links, two
     * independent resources of @p per_direction capacity each).
     * @return the pair of resource ids (a->b, b->a).
     */
    std::pair<ResourceId, ResourceId>
    addDuplexLink(LinkClass cls, Bps per_direction, ComponentId a,
                  ComponentId b, PortKind a_port, PortKind b_port,
                  SimTime latency, const std::string &label);

    /**
     * Convenience: add a half-duplex link (two half-links sharing one
     * resource of @p shared capacity).
     * @return the shared resource id.
     */
    ResourceId
    addSharedLink(LinkClass cls, Bps shared, ComponentId a, ComponentId b,
                  PortKind a_port, PortKind b_port, SimTime latency,
                  const std::string &label);

    // --- accessors -----------------------------------------------------

    // Defined inline: these four sit on the BFS/DFS hot paths of the
    // router and the per-edge loops of the flow scheduler, where an
    // out-of-line call per edge visit is measurable.
    const Component &component(ComponentId id) const
    {
        DSTRAIN_ASSERT(id >= 0 && id < static_cast<int>(components_.size()),
                       "bad component id %d", id);
        return components_[static_cast<std::size_t>(id)];
    }

    const HalfLink &halfLink(HalfLinkId id) const
    {
        DSTRAIN_ASSERT(id >= 0 && id < static_cast<int>(half_links_.size()),
                       "bad half-link id %d", id);
        return half_links_[static_cast<std::size_t>(id)];
    }

    const Resource &resource(ResourceId id) const
    {
        DSTRAIN_ASSERT(id >= 0 && id < static_cast<int>(resources_.size()),
                       "bad resource id %d", id);
        return resources_[static_cast<std::size_t>(id)];
    }

    Resource &resource(ResourceId id)
    {
        DSTRAIN_ASSERT(id >= 0 && id < static_cast<int>(resources_.size()),
                       "bad resource id %d", id);
        return resources_[static_cast<std::size_t>(id)];
    }

    std::size_t componentCount() const { return components_.size(); }
    std::size_t halfLinkCount() const { return half_links_.size(); }
    std::size_t resourceCount() const { return resources_.size(); }

    /** Outgoing half-link ids of a component. */
    const std::vector<HalfLinkId> &outgoing(ComponentId id) const
    {
        DSTRAIN_ASSERT(id >= 0 && id < static_cast<int>(adjacency_.size()),
                       "bad component id %d", id);
        return adjacency_[static_cast<std::size_t>(id)];
    }

    /** All components of a given kind, in id order. */
    std::vector<ComponentId> componentsOfKind(ComponentKind kind) const;

    /** Components of a given kind within one node, in id order. */
    std::vector<ComponentId> componentsOfKind(ComponentKind kind,
                                              int node) const;

    /**
     * Find a component by kind / node / per-kind index.
     * Returns kNoComponent when absent.
     */
    ComponentId findComponent(ComponentKind kind, int node,
                              int index) const;

    /** All resources (mutable, for the flow scheduler & telemetry). */
    std::vector<Resource> &resources() { return resources_; }
    const std::vector<Resource> &resources() const { return resources_; }

    /** Number of nodes represented (max node index + 1). */
    int nodeCount() const { return node_count_; }

    /** Close all resource rate logs at time @p t. */
    void finalizeLogs(SimTime t);

    /** Drop all rate-log history before @p t (warm-up truncation). */
    void dropLogsBefore(SimTime t);

    /** Toggle segment retention on every resource rate log. */
    void setRetainSegments(bool retain);

    /**
     * Arm every resource's streaming accumulator on the grid
     * `begin + k * bucket` (see RateLog::armStream).
     */
    void armStreams(SimTime begin, SimTime bucket);

    /** Aggregate telemetry counters across all resource logs. */
    TelemetryStats telemetryStats() const;

  private:
    std::vector<Component> components_;
    std::vector<HalfLink> half_links_;
    std::vector<Resource> resources_;
    std::vector<std::vector<HalfLinkId>> adjacency_;
    int node_count_ = 0;
};

} // namespace dstrain

#endif // DSTRAIN_HW_TOPOLOGY_HH
