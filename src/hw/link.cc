/**
 * @file
 * Implementation of link primitives.
 */

#include "hw/link.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace dstrain {

const char *
linkClassName(LinkClass cls)
{
    switch (cls) {
      case LinkClass::Dram:
        return "DRAM";
      case LinkClass::Xgmi:
        return "xGMI";
      case LinkClass::PcieGpu:
        return "PCIe-GPU";
      case LinkClass::PcieNvme:
        return "PCIe-NVME";
      case LinkClass::PcieNic:
        return "PCIe-NIC";
      case LinkClass::NvLink:
        return "NVLink";
      case LinkClass::Roce:
        return "RoCE";
      case LinkClass::NvmeMedia:
        return "NVMe-media";
      case LinkClass::IodXbar:
        return "IOD-xbar";
    }
    panic("unknown LinkClass %d", static_cast<int>(cls));
}


void
RateLog::fold(SimTime s_begin, SimTime s_end, Bps rate)
{
    if (rate == 0.0 || s_end <= stream_begin_)
        return;
    // Mirrors the segment integrator in bucketizeRateLogs() exactly
    // (same clip, same index arithmetic, same deposit expression) so
    // streamed buckets are bit-identical to a post-hoc segment sweep
    // over the same history.
    const SimTime s0 = std::max(s_begin, stream_begin_);
    const SimTime s1 = s_end;
    const auto first =
        static_cast<std::size_t>((s0 - stream_begin_) / stream_bucket_);
    const auto last =
        static_cast<std::size_t>((s1 - stream_begin_) / stream_bucket_);
    if (last >= stream_values_.size())
        stream_values_.resize(last + 1, 0.0);
    for (std::size_t b = first; b <= last; ++b) {
        const SimTime b0 =
            stream_begin_ + static_cast<double>(b) * stream_bucket_;
        const SimTime b1 = b0 + stream_bucket_;
        const SimTime overlap =
            std::max(0.0, std::min(s1, b1) - std::max(s0, b0));
        stream_values_[b] += rate * overlap / stream_bucket_;
        ++buckets_touched_;
    }
}

void
RateLog::close(SimTime t)
{
    // Caller guarantees t > open_since_.
    total_bytes_ += current_rate_ * (t - open_since_);
    if (stream_armed_) {
        fold(open_since_, t, current_rate_);
        // A trailing zero-rate interval deposits nothing, so it does
        // not advance the folded-history mark. This keeps
        // streamCovers() true when idle fault-restore events extend
        // the simulated clock past the measurement window.
        if (current_rate_ != 0.0)
            stream_end_ = t;
    }
    if (retain_segments_)
        segments_.push_back(Segment{open_since_, t, current_rate_});
    open_since_ = t;
}

void
RateLog::finalize(SimTime t)
{
    DSTRAIN_ASSERT(t >= open_since_, "finalize before last change");
    if (t > open_since_)
        close(t);
    open_since_ = t;
}

void
RateLog::armStream(SimTime begin, SimTime bucket)
{
    DSTRAIN_ASSERT(bucket > 0.0, "non-positive stream bucket");
    stream_armed_ = true;
    stream_begin_ = begin;
    stream_bucket_ = bucket;
    stream_end_ = begin;
    stream_values_.clear();
}

void
RateLog::clear()
{
    segments_.clear();
    stream_values_.clear();
    open_since_ = 0.0;
    current_rate_ = 0.0;
    total_bytes_ = 0.0;
    stream_begin_ = 0.0;
    stream_bucket_ = 0.0;
    stream_end_ = 0.0;
    buckets_touched_ = 0;
    stream_armed_ = false;
    // retain_segments_ is configuration, not history: it survives.
}

void
RateLog::dropBefore(SimTime t)
{
    if (!retain_segments_) {
        // No stored history: all closed intervals end at or before
        // open_since_. Dropping into the open interval would lose
        // bytes the counter can no longer attribute, so forbid it.
        DSTRAIN_ASSERT(t >= open_since_,
                       "dropBefore into the open interval of an "
                       "unretained rate log");
        open_since_ = std::max(open_since_, t);
        total_bytes_ = 0.0;
        return;
    }
    auto keep = std::remove_if(segments_.begin(), segments_.end(),
                               [t](const Segment &s) { return s.end <= t; });
    segments_.erase(keep, segments_.end());
    for (Segment &s : segments_)
        s.begin = std::max(s.begin, t);
    open_since_ = std::max(open_since_, t);
    total_bytes_ = 0.0;
    for (const Segment &s : segments_)
        total_bytes_ += s.rate * (s.end - s.begin);
}

} // namespace dstrain
