/**
 * @file
 * Implementation of link primitives.
 */

#include "hw/link.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace dstrain {

const char *
linkClassName(LinkClass cls)
{
    switch (cls) {
      case LinkClass::Dram:
        return "DRAM";
      case LinkClass::Xgmi:
        return "xGMI";
      case LinkClass::PcieGpu:
        return "PCIe-GPU";
      case LinkClass::PcieNvme:
        return "PCIe-NVME";
      case LinkClass::PcieNic:
        return "PCIe-NIC";
      case LinkClass::NvLink:
        return "NVLink";
      case LinkClass::Roce:
        return "RoCE";
      case LinkClass::NvmeMedia:
        return "NVMe-media";
      case LinkClass::IodXbar:
        return "IOD-xbar";
    }
    panic("unknown LinkClass %d", static_cast<int>(cls));
}

double
linkClassEfficiency(LinkClass cls)
{
    // Protocol/encoding efficiency: the achievable fraction of the
    // quoted line rate under ideal (same-socket, uncontended)
    // conditions. RoCE is calibrated to the paper's 93% stress-test
    // result; PCIe/NVLink values follow common microbenchmark
    // achievable rates; DRAM accounts for refresh/turnaround.
    switch (cls) {
      case LinkClass::Dram:
        return 0.85;
      case LinkClass::Xgmi:
        return 0.88;
      case LinkClass::PcieGpu:
      case LinkClass::PcieNvme:
      case LinkClass::PcieNic:
        return 0.82;
      case LinkClass::NvLink:
        return 0.80;
      case LinkClass::Roce:
        return 0.93;
      case LinkClass::NvmeMedia:
      case LinkClass::IodXbar:
        return 1.0;  // these capacities are already effective rates
    }
    panic("unknown LinkClass %d", static_cast<int>(cls));
}

void
RateLog::setRate(SimTime t, Bps rate)
{
    DSTRAIN_ASSERT(t >= open_since_, "rate log time went backwards");
    if (rate == current_rate_)
        return;
    if (t > open_since_)
        segments_.push_back(Segment{open_since_, t, current_rate_});
    open_since_ = t;
    current_rate_ = rate;
}

void
RateLog::finalize(SimTime t)
{
    DSTRAIN_ASSERT(t >= open_since_, "finalize before last change");
    if (t > open_since_)
        segments_.push_back(Segment{open_since_, t, current_rate_});
    open_since_ = t;
}

Bytes
RateLog::totalBytes() const
{
    Bytes total = 0.0;
    for (const Segment &s : segments_)
        total += s.rate * (s.end - s.begin);
    return total;
}

void
RateLog::clear()
{
    segments_.clear();
    open_since_ = 0.0;
    current_rate_ = 0.0;
}

void
RateLog::dropBefore(SimTime t)
{
    auto keep = std::remove_if(segments_.begin(), segments_.end(),
                               [t](const Segment &s) { return s.end <= t; });
    segments_.erase(keep, segments_.end());
    for (Segment &s : segments_)
        s.begin = std::max(s.begin, t);
    open_since_ = std::max(open_since_, t);
}

} // namespace dstrain
