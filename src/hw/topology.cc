/**
 * @file
 * Implementation of the topology graph.
 */

#include "hw/topology.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dstrain {

const char *
componentKindName(ComponentKind kind)
{
    switch (kind) {
      case ComponentKind::CpuIod:
        return "cpu";
      case ComponentKind::DramPool:
        return "dram";
      case ComponentKind::Gpu:
        return "gpu";
      case ComponentKind::Nic:
        return "nic";
      case ComponentKind::NvmeDrive:
        return "nvme";
      case ComponentKind::NvmeMedia:
        return "nvme-media";
      case ComponentKind::Switch:
        return "switch";
    }
    panic("unknown ComponentKind %d", static_cast<int>(kind));
}

ComponentId
Topology::addComponent(ComponentKind kind, std::string name, int node,
                       int socket, int index)
{
    ComponentId id = static_cast<ComponentId>(components_.size());
    components_.push_back(
        Component{id, kind, std::move(name), node, socket, index});
    adjacency_.emplace_back();
    node_count_ = std::max(node_count_, node + 1);
    return id;
}

ResourceId
Topology::addResource(LinkClass cls, Bps capacity, std::string label,
                      int node, int socket)
{
    DSTRAIN_ASSERT(capacity > 0.0, "resource '%s' needs positive capacity",
                   label.c_str());
    ResourceId id = static_cast<ResourceId>(resources_.size());
    Resource r;
    r.id = id;
    r.cls = cls;
    r.capacity = capacity;
    r.nominal_capacity = capacity;
    r.label = std::move(label);
    r.node = node;
    r.socket = socket;
    resources_.push_back(std::move(r));
    return id;
}

HalfLinkId
Topology::addHalfLink(ResourceId resource, ComponentId from, ComponentId to,
                      PortKind from_port, PortKind to_port, LinkClass cls,
                      SimTime latency)
{
    DSTRAIN_ASSERT(resource >= 0 &&
                       resource < static_cast<int>(resources_.size()),
                   "bad resource id %d", resource);
    DSTRAIN_ASSERT(from >= 0 && from < static_cast<int>(components_.size()),
                   "bad 'from' component %d", from);
    DSTRAIN_ASSERT(to >= 0 && to < static_cast<int>(components_.size()),
                   "bad 'to' component %d", to);
    DSTRAIN_ASSERT(from != to, "self-link on component %d", from);
    HalfLinkId id = static_cast<HalfLinkId>(half_links_.size());
    half_links_.push_back(
        HalfLink{id, resource, from, to, from_port, to_port, cls, latency});
    adjacency_[static_cast<std::size_t>(from)].push_back(id);
    return id;
}

std::pair<ResourceId, ResourceId>
Topology::addDuplexLink(LinkClass cls, Bps per_direction, ComponentId a,
                        ComponentId b, PortKind a_port, PortKind b_port,
                        SimTime latency, const std::string &label)
{
    const Component &ca = component(a);
    ResourceId fwd = addResource(cls, per_direction, label + ".fwd",
                                 ca.node, ca.socket);
    ResourceId rev = addResource(cls, per_direction, label + ".rev",
                                 ca.node, ca.socket);
    addHalfLink(fwd, a, b, a_port, b_port, cls, latency);
    addHalfLink(rev, b, a, b_port, a_port, cls, latency);
    return {fwd, rev};
}

ResourceId
Topology::addSharedLink(LinkClass cls, Bps shared, ComponentId a,
                        ComponentId b, PortKind a_port, PortKind b_port,
                        SimTime latency, const std::string &label)
{
    const Component &ca = component(a);
    ResourceId res = addResource(cls, shared, label, ca.node, ca.socket);
    addHalfLink(res, a, b, a_port, b_port, cls, latency);
    addHalfLink(res, b, a, b_port, a_port, cls, latency);
    return res;
}

std::vector<ComponentId>
Topology::componentsOfKind(ComponentKind kind) const
{
    std::vector<ComponentId> out;
    for (const Component &c : components_)
        if (c.kind == kind)
            out.push_back(c.id);
    return out;
}

std::vector<ComponentId>
Topology::componentsOfKind(ComponentKind kind, int node) const
{
    std::vector<ComponentId> out;
    for (const Component &c : components_)
        if (c.kind == kind && c.node == node)
            out.push_back(c.id);
    return out;
}

ComponentId
Topology::findComponent(ComponentKind kind, int node, int index) const
{
    for (const Component &c : components_)
        if (c.kind == kind && c.node == node && c.index == index)
            return c.id;
    return kNoComponent;
}

void
Topology::finalizeLogs(SimTime t)
{
    for (Resource &r : resources_)
        r.log.finalize(t);
}

void
Topology::dropLogsBefore(SimTime t)
{
    for (Resource &r : resources_)
        r.log.dropBefore(t);
}

void
Topology::setRetainSegments(bool retain)
{
    for (Resource &r : resources_)
        r.log.setRetainSegments(retain);
}

void
Topology::armStreams(SimTime begin, SimTime bucket)
{
    for (Resource &r : resources_)
        r.log.armStream(begin, bucket);
}

TelemetryStats
Topology::telemetryStats() const
{
    TelemetryStats stats;
    for (const Resource &r : resources_) {
        stats.segments_retained += r.log.segments().size();
        stats.stream_buckets += r.log.streamValues().size();
        stats.buckets_touched += r.log.bucketsTouched();
        stats.memory_bytes += r.log.memoryBytes();
    }
    return stats;
}

} // namespace dstrain
