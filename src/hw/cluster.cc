/**
 * @file
 * Implementation of the cluster builder.
 */

#include "hw/cluster.hh"

#include <cstdlib>

#include "util/logging.hh"
#include "util/strings.hh"

namespace dstrain {

int
ClusterSpec::nodeCount() const
{
    if (groups.empty())
        return nodes;
    int count = 0;
    for (const NodeGroup &g : groups)
        count += g.count;
    return count;
}

const NodeSpec &
ClusterSpec::nodeSpecOf(int n) const
{
    if (groups.empty())
        return node;
    for (const NodeGroup &g : groups) {
        if (n < g.count)
            return g.node;
        n -= g.count;
    }
    panic("node index %d beyond the %d grouped nodes", n, nodeCount());
}

int
ClusterSpec::totalGpus() const
{
    if (groups.empty())
        return nodes * node.gpus;
    int gpus = 0;
    for (const NodeGroup &g : groups)
        gpus += g.count * g.node.gpus;
    return gpus;
}

std::vector<NodeGroup>
parseNodesSpec(const std::string &text, const NodeSpec &base,
               std::vector<ConfigError> *errors)
{
    DSTRAIN_ASSERT(errors != nullptr,
                   "parseNodesSpec needs an error sink");
    std::vector<NodeGroup> groups;
    for (const std::string &raw : split(text, ';')) {
        const std::string item = trim(raw);
        if (item.empty())
            continue;
        NodeGroup g;
        g.node = base;
        const auto colon = item.find(':');
        char *end = nullptr;
        const std::string count = trim(item.substr(0, colon));
        g.count =
            static_cast<int>(std::strtol(count.c_str(), &end, 10));
        if (count.empty() || *end != '\0' || g.count < 1) {
            errors->push_back(
                {"nodes-spec",
                 "bad group count '" + count +
                     "' (expected '<count>:key=val,...')"});
            continue;
        }
        bool ok = true;
        if (colon != std::string::npos) {
            for (const std::string &kv :
                 split(item.substr(colon + 1), ',')) {
                const auto eq = kv.find('=');
                const std::string key = trim(kv.substr(0, eq));
                const std::string val =
                    eq == std::string::npos ? ""
                                            : trim(kv.substr(eq + 1));
                end = nullptr;
                if (key == "gpus") {
                    g.node.gpus = static_cast<int>(
                        std::strtol(val.c_str(), &end, 10));
                } else if (key == "nics") {
                    g.node.nics = static_cast<int>(
                        std::strtol(val.c_str(), &end, 10));
                } else if (key == "roce") {
                    g.node.roce_per_dir =
                        std::strtod(val.c_str(), &end) * units::GBps;
                } else if (key == "gpu-mem") {
                    g.node.gpu_memory =
                        std::strtod(val.c_str(), &end) * units::GiB;
                } else {
                    errors->push_back(
                        {"nodes-spec",
                         "unknown key '" + key +
                             "' (gpus, nics, roce, gpu-mem)"});
                    ok = false;
                    continue;
                }
                if (val.empty() || *end != '\0') {
                    errors->push_back({"nodes-spec",
                                       "bad value '" + val +
                                           "' for key '" + key + "'"});
                    ok = false;
                }
            }
        }
        if (ok && (g.node.gpus < 1 || g.node.nics < 1)) {
            errors->push_back(
                {"nodes-spec",
                 csprintf("group needs gpus >= 1 and nics >= 1 "
                          "(got %d/%d)",
                          g.node.gpus, g.node.nics)});
            ok = false;
        }
        if (ok)
            groups.push_back(std::move(g));
    }
    if (groups.empty() && !trim(text).empty())
        errors->push_back({"nodes-spec", "no valid node groups"});
    return groups;
}

Cluster::Cluster(const ClusterSpec &spec)
    : spec_(spec)
{
    const int count = spec_.nodeCount();
    DSTRAIN_ASSERT(count >= 1, "cluster needs at least one node");

    for (int n = 0; n < count; ++n) {
        rank_base_.push_back(static_cast<int>(all_gpus_.size()));
        nodes_.push_back(buildNode(topo_, n, spec_.nodeSpecOf(n)));
        if (n == 0 && count > 1) {
            // The first node establishes the per-node footprint;
            // scale it by the node count (25% headroom covers the
            // fabric tier on top) so the graph arrays are sized once
            // up front instead of doubling while nodes stream in.
            const std::size_t nodes = static_cast<std::size_t>(count);
            topo_.reserve(topo_.componentCount() * nodes * 5 / 4,
                          topo_.resourceCount() * nodes * 5 / 4,
                          topo_.halfLinkCount() * nodes * 5 / 4);
        }
        int local = 0;
        for (ComponentId gpu : nodes_.back().gpus) {
            node_of_rank_.push_back(n);
            local_of_rank_.push_back(local++);
            all_gpus_.push_back(gpu);
        }
    }

    std::vector<FabricHost> hosts;
    hosts.reserve(static_cast<std::size_t>(count));
    for (int n = 0; n < count; ++n) {
        const NodeSpec &ns = spec_.nodeSpecOf(n);
        hosts.push_back(FabricHost{
            nodes_[static_cast<std::size_t>(n)].nics, ns.roce_per_dir,
            ns.roce_latency});
    }
    fabric_ = buildFabric(topo_, spec_.fabric, hosts);

    // The SerDes ablation switch comes from the template spec: it is
    // a modeling toggle, not per-node hardware.
    EcmpConfig ecmp;
    ecmp.enabled = spec_.fabric.ecmp;
    ecmp.seed = spec_.fabric.ecmp_seed;
    ecmp.max_paths = spec_.fabric.max_paths;
    router_ = std::make_unique<Router>(
        topo_, spec_.node.model_serdes_contention, ecmp);
}

const NodeHandles &
Cluster::node(int n) const
{
    DSTRAIN_ASSERT(n >= 0 && n < static_cast<int>(nodes_.size()),
                   "bad node index %d", n);
    return nodes_[static_cast<std::size_t>(n)];
}

const NodeSpec &
Cluster::nodeSpec(int n) const
{
    DSTRAIN_ASSERT(n >= 0 && n < static_cast<int>(nodes_.size()),
                   "bad node index %d", n);
    return spec_.nodeSpecOf(n);
}

int
Cluster::gpusOfNode(int n) const
{
    return static_cast<int>(node(n).gpus.size());
}

int
Cluster::rackOfNode(int n) const
{
    DSTRAIN_ASSERT(
        n >= 0 &&
            n < static_cast<int>(fabric_.rack_of_node.size()),
        "bad node index %d", n);
    return fabric_.rack_of_node[static_cast<std::size_t>(n)];
}

ComponentId
Cluster::gpuByRank(int rank) const
{
    DSTRAIN_ASSERT(rank >= 0 &&
                       rank < static_cast<int>(all_gpus_.size()),
                   "bad gpu rank %d", rank);
    return all_gpus_[static_cast<std::size_t>(rank)];
}

int
Cluster::rankOfGpu(ComponentId gpu) const
{
    for (std::size_t i = 0; i < all_gpus_.size(); ++i)
        if (all_gpus_[i] == gpu)
            return static_cast<int>(i);
    panic("component %d is not a GPU of this cluster", gpu);
}

int
Cluster::nodeOfRank(int rank) const
{
    DSTRAIN_ASSERT(rank >= 0 &&
                       rank < static_cast<int>(node_of_rank_.size()),
                   "bad gpu rank %d", rank);
    return node_of_rank_[static_cast<std::size_t>(rank)];
}

int
Cluster::localOfRank(int rank) const
{
    DSTRAIN_ASSERT(rank >= 0 &&
                       rank < static_cast<int>(local_of_rank_.size()),
                   "bad gpu rank %d", rank);
    return local_of_rank_[static_cast<std::size_t>(rank)];
}

int
Cluster::rankOf(int n, int local) const
{
    DSTRAIN_ASSERT(local >= 0 && local < gpusOfNode(n),
                   "node %d has no local gpu %d", n, local);
    return rank_base_[static_cast<std::size_t>(n)] + local;
}

} // namespace dstrain
