/**
 * @file
 * Implementation of the cluster builder.
 */

#include "hw/cluster.hh"

#include "util/logging.hh"

namespace dstrain {

Cluster::Cluster(const ClusterSpec &spec)
    : spec_(spec)
{
    DSTRAIN_ASSERT(spec_.nodes >= 1, "cluster needs at least one node");

    for (int n = 0; n < spec_.nodes; ++n) {
        nodes_.push_back(buildNode(topo_, n, spec_.node));
        for (ComponentId gpu : nodes_.back().gpus)
            all_gpus_.push_back(gpu);
    }

    if (spec_.nodes > 1) {
        // The SN3700 switch: modeled as a non-blocking hub. Each NIC
        // gets a duplex RoCE link at the 200 Gbps line rate; the
        // switch fabric (12.8 Tbps) is never the bottleneck, so no
        // fabric resource is added.
        switch_ = topo_.addComponent(ComponentKind::Switch, "sw0", -1, -1,
                                     0);
        for (int n = 0; n < spec_.nodes; ++n) {
            for (std::size_t s = 0; s < nodes_[n].nics.size(); ++s) {
                topo_.addDuplexLink(
                    LinkClass::Roce, spec_.node.roce_per_dir,
                    nodes_[static_cast<std::size_t>(n)].nics[s], switch_,
                    PortKind::Device, PortKind::Device,
                    spec_.node.roce_latency,
                    csprintf("n%d.roce-nic%zu", n, s));
            }
        }
    }

    router_ = std::make_unique<Router>(
        topo_, spec_.node.model_serdes_contention);
}

const NodeHandles &
Cluster::node(int n) const
{
    DSTRAIN_ASSERT(n >= 0 && n < static_cast<int>(nodes_.size()),
                   "bad node index %d", n);
    return nodes_[static_cast<std::size_t>(n)];
}

ComponentId
Cluster::gpuByRank(int rank) const
{
    DSTRAIN_ASSERT(rank >= 0 &&
                       rank < static_cast<int>(all_gpus_.size()),
                   "bad gpu rank %d", rank);
    return all_gpus_[static_cast<std::size_t>(rank)];
}

int
Cluster::rankOfGpu(ComponentId gpu) const
{
    for (std::size_t i = 0; i < all_gpus_.size(); ++i)
        if (all_gpus_[i] == gpu)
            return static_cast<int>(i);
    panic("component %d is not a GPU of this cluster", gpu);
}

} // namespace dstrain
