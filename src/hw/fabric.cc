/**
 * @file
 * Implementation of the fabric generators and the spec parser.
 */

#include "hw/fabric.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "util/logging.hh"
#include "util/strings.hh"

namespace dstrain {

namespace {

/** Hosts attached per edge switch for a fat-tree spec. */
int
hostsPerEdge(const FabricSpec &spec)
{
    const int half = spec.fat_tree_k / 2;
    return std::max(
        1, static_cast<int>(std::lround(half * spec.oversubscription)));
}

/** Add switch number @p ordinal (`sw<ordinal>`, node -1). */
ComponentId
addSwitch(Topology &topo, FabricInfo &info)
{
    const int ordinal = static_cast<int>(info.switches.size());
    const ComponentId id = topo.addComponent(
        ComponentKind::Switch, "sw" + std::to_string(ordinal), -1, -1,
        ordinal);
    info.switches.push_back(id);
    return id;
}

/** Uplink every NIC of node @p n to @p sw (legacy label scheme). */
void
uplinkNode(Topology &topo, const FabricHost &host, int n,
           ComponentId sw)
{
    for (std::size_t s = 0; s < host.nics.size(); ++s) {
        topo.addDuplexLink(LinkClass::Roce, host.roce_per_dir,
                           host.nics[s], sw, PortKind::Device,
                           PortKind::Device, host.roce_latency,
                           "n" + std::to_string(n) + ".roce-nic" + std::to_string(s));
    }
}

/** Trunk rate/latency: explicit spec values or the host uplink's. */
void
trunkParams(const FabricSpec &spec,
            const std::vector<FabricHost> &hosts, Bps *rate,
            SimTime *latency)
{
    *rate = spec.trunk_per_dir;
    *latency = spec.trunk_latency;
    if (!hosts.empty()) {
        if (*rate <= 0.0)
            *rate = hosts.front().roce_per_dir;
        if (*latency <= 0.0)
            *latency = hosts.front().roce_latency;
    }
}

/**
 * The paper's shape, byte for byte: nothing for one node, one
 * non-blocking switch with a duplex RoCE uplink per NIC otherwise.
 */
FabricInfo
buildSingleSwitch(Topology &topo, const std::vector<FabricHost> &hosts)
{
    FabricInfo info;
    info.rack_of_node.assign(hosts.size(), 0);
    if (hosts.size() <= 1)
        return info;

    // The SN3700 switch: modeled as a non-blocking hub. Each NIC
    // gets a duplex RoCE link at the 200 Gbps line rate; the
    // switch fabric (12.8 Tbps) is never the bottleneck, so no
    // fabric resource is added.
    const ComponentId sw = addSwitch(topo, info);
    for (std::size_t n = 0; n < hosts.size(); ++n)
        uplinkNode(topo, hosts[n], static_cast<int>(n), sw);
    return info;
}

/**
 * k-ary fat-tree: pods of k/2 edge + k/2 aggregation switches,
 * (k/2)^2 core switches, hosts block-assigned to edges. Only the
 * pods the host count needs are instantiated; cores are built when
 * more than one pod exists.
 */
FabricInfo
buildFatTree(Topology &topo, const FabricSpec &spec,
             const std::vector<FabricHost> &hosts)
{
    FabricInfo info;
    const int n = static_cast<int>(hosts.size());
    const int half = spec.fat_tree_k / 2;
    const int per_edge = hostsPerEdge(spec);
    const int edges = std::max(1, (n + per_edge - 1) / per_edge);
    const int pods = (edges + half - 1) / half;
    if (pods > spec.fat_tree_k) {
        fatal("fat-tree k=%d holds at most %d nodes "
              "(k pods x k/2 edges x %d hosts), got %d",
              spec.fat_tree_k, spec.fat_tree_k * half * per_edge,
              per_edge, n);
    }

    Bps trunk;
    SimTime trunk_lat;
    trunkParams(spec, hosts, &trunk, &trunk_lat);

    // Stage 1+2: full pods, edges before aggregations.
    std::vector<std::vector<ComponentId>> edge_sw(
        static_cast<std::size_t>(pods));
    std::vector<std::vector<ComponentId>> agg_sw(
        static_cast<std::size_t>(pods));
    for (int p = 0; p < pods; ++p) {
        for (int e = 0; e < half; ++e)
            edge_sw[static_cast<std::size_t>(p)].push_back(
                addSwitch(topo, info));
        for (int a = 0; a < half; ++a)
            agg_sw[static_cast<std::size_t>(p)].push_back(
                addSwitch(topo, info));
    }
    // Stage 3: cores, needed only for inter-pod traffic.
    std::vector<ComponentId> cores;
    if (pods > 1)
        for (int c = 0; c < half * half; ++c)
            cores.push_back(addSwitch(topo, info));

    // Host uplinks: node i hangs off global edge i / per_edge. The
    // rack label is that edge's ordinal among edges.
    for (int i = 0; i < n; ++i) {
        const int edge = i / per_edge;
        const int p = edge / half;
        const int e = edge % half;
        info.rack_of_node.push_back(edge);
        uplinkNode(topo, hosts[static_cast<std::size_t>(i)], i,
                   edge_sw[static_cast<std::size_t>(p)]
                          [static_cast<std::size_t>(e)]);
    }

    // Intra-pod trunks: every edge to every aggregation (the k/2-way
    // equal-cost diversity ECMP spreads over).
    for (int p = 0; p < pods; ++p) {
        for (int e = 0; e < half; ++e) {
            for (int a = 0; a < half; ++a) {
                topo.addDuplexLink(
                    LinkClass::Roce, trunk,
                    edge_sw[static_cast<std::size_t>(p)]
                           [static_cast<std::size_t>(e)],
                    agg_sw[static_cast<std::size_t>(p)]
                          [static_cast<std::size_t>(a)],
                    PortKind::Device, PortKind::Device, trunk_lat,
                    "ft.p" + std::to_string(p) + ".e" + std::to_string(e) + "-a" + std::to_string(a));
            }
        }
    }
    // Aggregation a of every pod trunks to cores [a*k/2, (a+1)*k/2).
    for (int p = 0; p < pods; ++p) {
        for (int a = 0; a < half && !cores.empty(); ++a) {
            for (int c = a * half; c < (a + 1) * half; ++c) {
                topo.addDuplexLink(
                    LinkClass::Roce, trunk,
                    agg_sw[static_cast<std::size_t>(p)]
                          [static_cast<std::size_t>(a)],
                    cores[static_cast<std::size_t>(c)],
                    PortKind::Device, PortKind::Device, trunk_lat,
                    "ft.p" + std::to_string(p) + ".a" + std::to_string(a) + "-c" + std::to_string(c));
            }
        }
    }
    return info;
}

/**
 * Rail-optimized: one switch per local NIC index; NIC r of every
 * node uplinks to rail switch r. Collectives that pin channel c to
 * NIC c%n on both endpoints keep each channel's traffic on one rail.
 */
FabricInfo
buildRail(Topology &topo, const std::vector<FabricHost> &hosts)
{
    FabricInfo info;
    info.rack_of_node.assign(hosts.size(), 0);
    std::size_t rails = 0;
    for (const FabricHost &h : hosts)
        rails = std::max(rails, h.nics.size());
    info.rails = static_cast<int>(rails);

    std::vector<ComponentId> rail_sw;
    for (std::size_t r = 0; r < rails; ++r)
        rail_sw.push_back(addSwitch(topo, info));
    for (std::size_t n = 0; n < hosts.size(); ++n) {
        const FabricHost &host = hosts[n];
        for (std::size_t r = 0; r < host.nics.size(); ++r) {
            topo.addDuplexLink(LinkClass::Roce, host.roce_per_dir,
                               host.nics[r], rail_sw[r],
                               PortKind::Device, PortKind::Device,
                               host.roce_latency,
                               "n" + std::to_string(n) + ".roce-nic" + std::to_string(r));
        }
    }
    return info;
}

/**
 * Two-stage Clos: nodes block-assigned to leaves, every leaf trunked
 * to every spine (spine count = equal-cost diversity).
 */
FabricInfo
buildSpineLeaf(Topology &topo, const FabricSpec &spec,
               const std::vector<FabricHost> &hosts)
{
    FabricInfo info;
    const int n = static_cast<int>(hosts.size());
    const int leaves = spec.leaves;
    const int per_leaf = (n + leaves - 1) / leaves;

    Bps trunk;
    SimTime trunk_lat;
    trunkParams(spec, hosts, &trunk, &trunk_lat);

    std::vector<ComponentId> leaf_sw;
    std::vector<ComponentId> spine_sw;
    for (int l = 0; l < leaves; ++l)
        leaf_sw.push_back(addSwitch(topo, info));
    for (int s = 0; s < spec.spines; ++s)
        spine_sw.push_back(addSwitch(topo, info));

    for (int i = 0; i < n; ++i) {
        const int leaf = i / per_leaf;
        info.rack_of_node.push_back(leaf);
        uplinkNode(topo, hosts[static_cast<std::size_t>(i)], i,
                   leaf_sw[static_cast<std::size_t>(leaf)]);
    }
    for (int l = 0; l < leaves; ++l) {
        for (int s = 0; s < spec.spines; ++s) {
            topo.addDuplexLink(LinkClass::Roce, trunk,
                               leaf_sw[static_cast<std::size_t>(l)],
                               spine_sw[static_cast<std::size_t>(s)],
                               PortKind::Device, PortKind::Device,
                               trunk_lat, "sl.l" + std::to_string(l) + "-s" + std::to_string(s));
        }
    }
    return info;
}

} // namespace

const char *
fabricKindName(FabricKind kind)
{
    switch (kind) {
      case FabricKind::SingleSwitch:
        return "single";
      case FabricKind::FatTree:
        return "fat-tree";
      case FabricKind::Rail:
        return "rail";
      case FabricKind::SpineLeaf:
        return "spine-leaf";
    }
    panic("unknown FabricKind %d", static_cast<int>(kind));
}

std::vector<ConfigError>
FabricSpec::validate() const
{
    std::vector<ConfigError> errors;
    if (kind == FabricKind::FatTree &&
        (fat_tree_k < 2 || fat_tree_k % 2 != 0)) {
        errors.push_back({"fabric.fat_tree_k",
                          csprintf("k must be even and >= 2 (got %d)",
                                   fat_tree_k)});
    }
    if (!(oversubscription > 0.0)) {
        errors.push_back({"fabric.oversubscription",
                          csprintf("must be > 0 (got %g)",
                                   oversubscription)});
    }
    if (kind == FabricKind::SpineLeaf && (leaves < 1 || spines < 1)) {
        errors.push_back(
            {"fabric.spine_leaf",
             csprintf("needs leaves >= 1 and spines >= 1 (got %d/%d)",
                      leaves, spines)});
    }
    if (trunk_per_dir < 0.0)
        errors.push_back({"fabric.trunk_per_dir", "must be >= 0"});
    if (trunk_latency < 0.0)
        errors.push_back({"fabric.trunk_latency", "must be >= 0"});
    if (max_paths < 1)
        errors.push_back({"fabric.max_paths", "must be >= 1"});
    return errors;
}

std::string
FabricSpec::str() const
{
    std::string out = fabricKindName(kind);
    if (kind == FabricKind::FatTree) {
        out += csprintf(":k=%d", fat_tree_k);
        if (oversubscription != 1.0)
            out += csprintf(",oversub=%g", oversubscription);
    } else if (kind == FabricKind::SpineLeaf) {
        out += csprintf(":leaves=%d,spines=%d", leaves, spines);
    }
    return out;
}

int
FabricInfo::rackCount() const
{
    int count = 0;
    for (int r : rack_of_node)
        count = std::max(count, r + 1);
    return count;
}

FabricInfo
buildFabric(Topology &topo, const FabricSpec &spec,
            const std::vector<FabricHost> &hosts)
{
    const std::vector<ConfigError> errors = spec.validate();
    if (!errors.empty())
        fatal("invalid fabric spec:\n%s",
              formatConfigErrors(errors).c_str());
    switch (spec.kind) {
      case FabricKind::SingleSwitch:
        return buildSingleSwitch(topo, hosts);
      case FabricKind::FatTree:
        return buildFatTree(topo, spec, hosts);
      case FabricKind::Rail:
        return buildRail(topo, hosts);
      case FabricKind::SpineLeaf:
        return buildSpineLeaf(topo, spec, hosts);
    }
    panic("unknown FabricKind %d", static_cast<int>(spec.kind));
}

FabricSpec
parseFabricSpec(const std::string &text,
                std::vector<ConfigError> *errors)
{
    DSTRAIN_ASSERT(errors != nullptr,
                   "parseFabricSpec needs an error sink");
    FabricSpec spec;
    const auto colon = text.find(':');
    const std::string name = trim(text.substr(0, colon));

    if (name == "single") {
        spec.kind = FabricKind::SingleSwitch;
    } else if (name == "fat-tree") {
        spec.kind = FabricKind::FatTree;
        spec.fat_tree_k = 8;
    } else if (name == "rail") {
        spec.kind = FabricKind::Rail;
    } else if (name == "spine-leaf") {
        spec.kind = FabricKind::SpineLeaf;
    } else {
        errors->push_back(
            {"fabric", "unknown fabric '" + name +
                           "' (single, fat-tree, rail, spine-leaf)"});
        return spec;
    }

    if (colon == std::string::npos)
        return spec;
    for (const std::string &kv :
         split(text.substr(colon + 1), ',')) {
        const auto eq = kv.find('=');
        const std::string key = trim(kv.substr(0, eq));
        const std::string val =
            eq == std::string::npos ? "" : trim(kv.substr(eq + 1));
        char *end = nullptr;
        if (key == "k" && spec.kind == FabricKind::FatTree) {
            spec.fat_tree_k =
                static_cast<int>(std::strtol(val.c_str(), &end, 10));
        } else if (key == "oversub" &&
                   spec.kind == FabricKind::FatTree) {
            spec.oversubscription = std::strtod(val.c_str(), &end);
        } else if (key == "leaves" &&
                   spec.kind == FabricKind::SpineLeaf) {
            spec.leaves =
                static_cast<int>(std::strtol(val.c_str(), &end, 10));
        } else if (key == "spines" &&
                   spec.kind == FabricKind::SpineLeaf) {
            spec.spines =
                static_cast<int>(std::strtol(val.c_str(), &end, 10));
        } else if (key == "ecmp") {
            if (val == "on")
                spec.ecmp = true;
            else if (val == "off")
                spec.ecmp = false;
            else
                errors->push_back({"fabric", "ecmp= takes on|off, got '" +
                                                 val + "'"});
            continue;
        } else if (key == "seed") {
            spec.ecmp_seed = static_cast<std::uint64_t>(
                std::strtoull(val.c_str(), &end, 10));
        } else if (key == "paths") {
            spec.max_paths =
                static_cast<int>(std::strtol(val.c_str(), &end, 10));
        } else {
            errors->push_back(
                {"fabric",
                 "unknown key '" + key + "' for fabric '" + name +
                     "' (k, oversub, leaves, spines, ecmp, seed, "
                     "paths)"});
            continue;
        }
        if (val.empty() || (end != nullptr && *end != '\0')) {
            errors->push_back(
                {"fabric", "bad value '" + val + "' for key '" + key +
                               "'"});
        }
    }
    for (ConfigError &e : spec.validate())
        errors->push_back(std::move(e));
    return spec;
}

} // namespace dstrain
