/**
 * @file
 * Implementation of the fault injector.
 */

#include "fault/fault_injector.hh"

#include <algorithm>

#include "net/resilience.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace dstrain {

namespace {

/** Map a spec spelling to the LinkClass it targets. */
bool
classForTarget(std::string_view name, LinkClass *out)
{
    if (name == "roce")
        *out = LinkClass::Roce;
    else if (name == "nvlink")
        *out = LinkClass::NvLink;
    else if (name == "pcie-gpu")
        *out = LinkClass::PcieGpu;
    else if (name == "pcie-nic")
        *out = LinkClass::PcieNic;
    else if (name == "pcie-nvme")
        *out = LinkClass::PcieNvme;
    else if (name == "xgmi")
        *out = LinkClass::Xgmi;
    else if (name == "dram")
        *out = LinkClass::Dram;
    else if (name == "nvme-media")
        *out = LinkClass::NvmeMedia;
    else if (name == "iod")
        *out = LinkClass::IodXbar;
    else
        return false;
    return true;
}

/** Parse the integer suffix of "<prefix><k>"; fatal on mismatch. */
int
indexOf(const std::string &text, const std::string &prefix)
{
    DSTRAIN_ASSERT(startsWith(text, prefix) &&
                       text.size() > prefix.size(),
                   "bad fault target '%s'", text.c_str());
    return std::atoi(text.c_str() + prefix.size());
}

/** Non-fatal "<prefix><k>" parse (digits only after the prefix). */
bool
tryIndexed(const std::string &text, std::string_view prefix, int *out)
{
    if (!startsWith(text, prefix) || text.size() <= prefix.size())
        return false;
    for (std::size_t i = prefix.size(); i < text.size(); ++i)
        if (text[i] < '0' || text[i] > '9')
            return false;
    *out = std::atoi(text.c_str() + prefix.size());
    return true;
}

/** The target namespaces, listed in every resolution error. */
constexpr const char *kTargetNamespaces =
    "valid target namespaces: rank<k> (GPU ranks), n<k> (nodes), "
    "n<k>.nic<j> (NICs), a link class (roce, nvlink, pcie-gpu, "
    "pcie-nic, pcie-nvme, xgmi, dram, nvme-media, iod) optionally "
    "scoped /n<k> or /rack<k>, rail<r> (NIC r's RoCE uplinks on "
    "every node), sw<j> (every link of switch j)";

} // namespace

FaultInjector::FaultInjector(Simulation &sim, Cluster &cluster,
                             FlowScheduler &flows, TransferManager &tm,
                             Executor &executor, AioEngine &aio,
                             FaultPlan plan)
    : sim_(sim), cluster_(cluster), flows_(flows), tm_(tm),
      executor_(executor), aio_(aio), plan_(std::move(plan))
{
    active_.resize(cluster_.topology().resourceCount());
    gpu_active_.resize(
        static_cast<std::size_t>(cluster_.spec().totalGpus()));
}

FaultInjector::Resolved
FaultInjector::resolve(const FaultEvent &ev) const
{
    const Topology &topo = cluster_.topology();
    Resolved r;
    switch (ev.kind) {
      case FaultKind::LinkDegrade:
      case FaultKind::LinkFlap:
      case FaultKind::LinkDown: {
        int idx = 0;
        if (tryIndexed(ev.target, "rail", &idx)) {
            // Rail r: the RoCE uplinks of NIC r on every node (on a
            // rail-optimized fabric that is exactly the rail switch's
            // edge set; on any other fabric it is the same NIC slot
            // across the cluster).
            for (std::size_t h = 0; h < topo.halfLinkCount(); ++h) {
                const HalfLink &hl =
                    topo.halfLink(static_cast<HalfLinkId>(h));
                if (hl.cls != LinkClass::Roce)
                    continue;
                const Component &from = topo.component(hl.from);
                const Component &to = topo.component(hl.to);
                const bool hit =
                    (from.kind == ComponentKind::Nic &&
                     from.index == idx) ||
                    (to.kind == ComponentKind::Nic && to.index == idx);
                if (hit && std::find(r.rids.begin(), r.rids.end(),
                                     hl.resource) == r.rids.end()) {
                    r.rids.push_back(hl.resource);
                }
            }
            if (r.rids.empty())
                fatal("fault target '%s': no NIC with index %d on any "
                      "node (%s)",
                      ev.target.c_str(), idx, kTargetNamespaces);
            return r;
        }
        if (tryIndexed(ev.target, "sw", &idx)) {
            // Switch j: every link touching it, trunks included.
            const ComponentId id =
                topo.findComponent(ComponentKind::Switch, -1, idx);
            if (id == kNoComponent)
                fatal("fault target '%s': no such switch (%s)",
                      ev.target.c_str(), kTargetNamespaces);
            for (std::size_t h = 0; h < topo.halfLinkCount(); ++h) {
                const HalfLink &hl =
                    topo.halfLink(static_cast<HalfLinkId>(h));
                if (hl.from != id && hl.to != id)
                    continue;
                if (std::find(r.rids.begin(), r.rids.end(),
                              hl.resource) == r.rids.end()) {
                    r.rids.push_back(hl.resource);
                }
            }
            DSTRAIN_ASSERT(!r.rids.empty(), "switch '%s' has no links",
                           ev.target.c_str());
            return r;
        }
        const auto parts = split(ev.target, '/');
        LinkClass cls;
        if (parts.empty() || !classForTarget(parts[0], &cls))
            fatal("fault target '%s': unknown link class (%s)",
                  ev.target.c_str(), kTargetNamespaces);
        int node = -1;
        int rack = -1;
        if (parts.size() == 2 && !tryIndexed(parts[1], "n", &node) &&
            !tryIndexed(parts[1], "rack", &rack)) {
            fatal("fault target '%s': bad scope '%s' (%s)",
                  ev.target.c_str(), parts[1].c_str(),
                  kTargetNamespaces);
        }
        if (rack >= 0 && rack >= cluster_.fabric().rackCount())
            fatal("fault target '%s': no such rack (cluster has %d)",
                  ev.target.c_str(), cluster_.fabric().rackCount());
        for (const Resource &res : topo.resources()) {
            if (res.cls != cls)
                continue;
            if (node >= 0 && res.node != node)
                continue;
            // Rack scope: the fabric generator labels every node with
            // its rack; trunk resources (node -1) belong to no rack.
            if (rack >= 0 &&
                (res.node < 0 ||
                 cluster_.rackOfNode(res.node) != rack)) {
                continue;
            }
            r.rids.push_back(res.id);
        }
        if (r.rids.empty())
            fatal("fault target '%s' matches no link in this cluster "
                  "(%s)",
                  ev.target.c_str(), kTargetNamespaces);
        return r;
      }
      case FaultKind::NicFailover: {
        const auto parts = split(ev.target, '.');
        DSTRAIN_ASSERT(parts.size() == 2, "bad NIC target '%s'",
                       ev.target.c_str());
        const int node = indexOf(parts[0], "n");
        const int nic = indexOf(parts[1], "nic");
        const ComponentId id =
            topo.findComponent(ComponentKind::Nic, node, nic);
        if (id == kNoComponent)
            fatal("fault target '%s': no such NIC (%s)",
                  ev.target.c_str(), kTargetNamespaces);
        // Every link direction touching the NIC dies with it: the
        // PCIe attach and the RoCE uplink.
        for (std::size_t h = 0; h < topo.halfLinkCount(); ++h) {
            const HalfLink &hl =
                topo.halfLink(static_cast<HalfLinkId>(h));
            if (hl.from != id && hl.to != id)
                continue;
            if (std::find(r.rids.begin(), r.rids.end(), hl.resource) ==
                r.rids.end()) {
                r.rids.push_back(hl.resource);
            }
        }
        DSTRAIN_ASSERT(!r.rids.empty(), "NIC '%s' has no links",
                       ev.target.c_str());
        return r;
      }
      case FaultKind::GpuStraggler: {
        r.rank = indexOf(ev.target, "rank");
        if (r.rank < 0 || r.rank >= cluster_.spec().totalGpus())
            fatal("fault target '%s': no such rank (cluster has %d; "
                  "%s)",
                  ev.target.c_str(), cluster_.spec().totalGpus(),
                  kTargetNamespaces);
        return r;
      }
      case FaultKind::NvmeDegrade: {
        const int node = indexOf(ev.target, "n");
        if (node < 0 || node >= cluster_.nodeCount())
            fatal("fault target '%s': no such node (cluster has %d; "
                  "%s)",
                  ev.target.c_str(), cluster_.nodeCount(),
                  kTargetNamespaces);
        r.nvme_node = node;
        for (const Resource &res : topo.resources()) {
            if (res.node == node && (res.cls == LinkClass::PcieNvme ||
                                     res.cls == LinkClass::NvmeMedia)) {
                r.rids.push_back(res.id);
            }
        }
        if (r.rids.empty())
            fatal("fault target '%s': node has no NVMe links",
                  ev.target.c_str());
        return r;
      }
      case FaultKind::GpuDown: {
        r.rank = indexOf(ev.target, "rank");
        if (r.rank < 0 || r.rank >= cluster_.spec().totalGpus())
            fatal("fault target '%s': no such rank (cluster has %d; "
                  "%s)",
                  ev.target.c_str(), cluster_.spec().totalGpus(),
                  kTargetNamespaces);
        // The dead GPU's attach links (NVLink + PCIe) go to zero:
        // anything still talking to it stalls until the abort sweeps
        // it away.
        const ComponentId gpu = cluster_.gpuByRank(r.rank);
        for (std::size_t h = 0; h < topo.halfLinkCount(); ++h) {
            const HalfLink &hl =
                topo.halfLink(static_cast<HalfLinkId>(h));
            if (hl.from != gpu && hl.to != gpu)
                continue;
            if (std::find(r.rids.begin(), r.rids.end(), hl.resource) ==
                r.rids.end()) {
                r.rids.push_back(hl.resource);
            }
        }
        DSTRAIN_ASSERT(!r.rids.empty(), "rank %d has no links", r.rank);
        return r;
      }
      case FaultKind::NodeDown: {
        r.node = indexOf(ev.target, "n");
        if (r.node < 0 || r.node >= cluster_.nodeCount())
            fatal("fault target '%s': no such node (cluster has %d; "
                  "%s)",
                  ev.target.c_str(), cluster_.nodeCount(),
                  kTargetNamespaces);
        for (const Resource &res : topo.resources())
            if (res.node == r.node)
                r.rids.push_back(res.id);
        DSTRAIN_ASSERT(!r.rids.empty(), "node %d has no resources",
                       r.node);
        return r;
      }
    }
    fatal("unknown FaultKind %d", static_cast<int>(ev.kind));
}

void
FaultInjector::arm()
{
    DSTRAIN_ASSERT(!armed_, "FaultInjector armed twice");
    armed_ = true;
    const std::vector<ConfigError> errors = plan_.validate();
    if (!errors.empty())
        fatal("invalid fault plan:\n%s",
              formatConfigErrors(errors).c_str());

    tm_.configureRetry(plan_.retry);
    resolved_.reserve(plan_.events.size());
    impacts_.resize(plan_.events.size());
    snaps_.resize(plan_.events.size());
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        resolved_.push_back(resolve(plan_.events[i]));
        impacts_[i].event = plan_.events[i];
    }
    // Event-storm coalescing: consecutive soft events firing at the
    // bitwise-same instant (a correlated failure sweeping several
    // domains at once) share one DES callback that applies them all
    // inside a scheduler batch — one region closure, one fair-share
    // solve for the whole storm instead of one per event. Hard faults
    // stay solo: their handler aborts the run (cancelAll is not legal
    // inside a batch) and must observe exactly the pre-fault state.
    // The group occupies the first member's schedule position, so
    // same-timestamp FIFO order against other subsystems' events is
    // unchanged; restores keep their individual events.
    for (std::size_t i = 0; i < plan_.events.size();) {
        const FaultEvent &ev = plan_.events[i];
        std::size_t j = i + 1;
        if (!isHardFault(ev.kind)) {
            while (j < plan_.events.size() &&
                   plan_.events[j].begin == ev.begin &&
                   !isHardFault(plan_.events[j].kind)) {
                ++j;
            }
        }
        if (j - i == 1) {
            sim_.events().schedule(ev.begin, [this, i] { apply(i); });
        } else {
            sim_.events().schedule(ev.begin, [this, i, j] {
                FlowScheduler::ScopedBatch batch(flows_);
                for (std::size_t k = i; k < j; ++k)
                    apply(k);
            });
        }
        for (std::size_t k = i; k < j; ++k) {
            if (plan_.events[k].duration > 0.0) {
                sim_.events().schedule(
                    plan_.events[k].begin + plan_.events[k].duration,
                    [this, k] { restore(k); });
            }
        }
        i = j;
    }
}

void
FaultInjector::apply(std::size_t i)
{
    const FaultEvent &ev = plan_.events[i];
    const Resolved &r = resolved_[i];
    const SimTime now = sim_.now();
    const double fraction =
        (ev.kind == FaultKind::LinkFlap ||
         ev.kind == FaultKind::LinkDown ||
         ev.kind == FaultKind::NicFailover || isHardFault(ev.kind))
            ? 0.0
            : ev.fraction;

    impacts_[i].applied_at = now;
    const Topology &topo = cluster_.topology();
    for (ResourceId rid : r.rids) {
        Snapshot s;
        s.rid = rid;
        s.at_apply = topo.resource(rid).log.bytesThrough(now);
        snaps_[i].push_back(s);
        pushFraction(rid, fraction);
    }
    // One batched capacity update — and thus at most one fair-share
    // solve — for the whole failure domain (a switch or rail fault
    // can scale hundreds of links in one event).
    updateCapacities(r.rids);
    if (bus_ != nullptr && !r.rids.empty())
        bus_->publish(r.rids);
    // Record the capacities that resulted (overlap-aware).
    for (std::size_t k = 0; k < r.rids.size(); ++k) {
        const Resource &res = topo.resource(r.rids[k]);
        LinkImpact li;
        li.label = res.label;
        li.nominal = res.nominal_capacity;
        li.faulted = res.capacity;
        impacts_[i].links.push_back(std::move(li));
    }

    if (isHardFault(ev.kind)) {
        // Hard failure: no restore is scheduled and no stranded-flow
        // scan runs — the recovery manager aborts the whole iteration
        // and drives the rest.
        inform("hard fault: %s at t=%s", ev.str().c_str(),
               formatTime(now).c_str());
        if (!hard_handler_) {
            fatal("hard fault '%s' but no recovery is configured "
                  "(enable a checkpoint policy)",
                  ev.str().c_str());
        }
        hard_handler_(i);
        return;
    }

    if (r.rank >= 0) {
        gpu_active_[static_cast<std::size_t>(r.rank)].push_back(
            ev.fraction);
        updateGpu(r.rank);
    }
    if (r.nvme_node >= 0) {
        nvme_active_.push_back(ev.fraction);
        updateNvmeLatency();
    }
    if (!r.rids.empty())
        tm_.notifyCapacityChange();

    inform("fault: %s at t=%s", ev.str().c_str(),
           formatTime(now).c_str());
}

void
FaultInjector::restore(std::size_t i)
{
    const FaultEvent &ev = plan_.events[i];
    const Resolved &r = resolved_[i];
    const SimTime now = sim_.now();
    const double fraction =
        (ev.kind == FaultKind::LinkFlap ||
         ev.kind == FaultKind::NicFailover)
            ? 0.0
            : ev.fraction;

    impacts_[i].restored_at = now;
    impacts_[i].restored = true;
    const Topology &topo = cluster_.topology();
    for (Snapshot &s : snaps_[i])
        s.at_restore = topo.resource(s.rid).log.bytesThrough(now);
    for (ResourceId rid : r.rids)
        popFraction(rid, fraction);
    updateCapacities(r.rids);
    if (bus_ != nullptr && !r.rids.empty())
        bus_->publish(r.rids);

    if (r.rank >= 0) {
        auto &v = gpu_active_[static_cast<std::size_t>(r.rank)];
        v.erase(std::find(v.begin(), v.end(), ev.fraction));
        updateGpu(r.rank);
    }
    if (r.nvme_node >= 0) {
        nvme_active_.erase(std::find(nvme_active_.begin(),
                                     nvme_active_.end(), ev.fraction));
        updateNvmeLatency();
    }
    if (!r.rids.empty())
        tm_.notifyCapacityChange();

    inform("fault cleared: %s at t=%s", ev.str().c_str(),
           formatTime(now).c_str());
}

void
FaultInjector::restoreHard(std::size_t i)
{
    const FaultEvent &ev = plan_.events[i];
    DSTRAIN_ASSERT(isHardFault(ev.kind),
                   "restoreHard on soft fault '%s'", ev.str().c_str());
    DSTRAIN_ASSERT(!impacts_[i].restored, "hard fault restored twice");
    const Resolved &r = resolved_[i];
    const SimTime now = sim_.now();

    impacts_[i].restored_at = now;
    impacts_[i].restored = true;
    const Topology &topo = cluster_.topology();
    for (Snapshot &s : snaps_[i])
        s.at_restore = topo.resource(s.rid).log.bytesThrough(now);
    for (ResourceId rid : r.rids)
        popFraction(rid, 0.0);
    updateCapacities(r.rids);
    if (bus_ != nullptr && !r.rids.empty())
        bus_->publish(r.rids);

    inform("hardware replaced: %s healthy at t=%s", ev.target.c_str(),
           formatTime(now).c_str());
}

void
FaultInjector::pushFraction(ResourceId rid, double fraction)
{
    active_[static_cast<std::size_t>(rid)].push_back(fraction);
}

void
FaultInjector::popFraction(ResourceId rid, double fraction)
{
    auto &v = active_[static_cast<std::size_t>(rid)];
    auto it = std::find(v.begin(), v.end(), fraction);
    DSTRAIN_ASSERT(it != v.end(), "restore without matching apply");
    v.erase(it);
}

void
FaultInjector::updateCapacities(const std::vector<ResourceId> &rids)
{
    if (rids.empty())
        return;
    // Re-derive each target capacity from the active fault fractions
    // (min across overlapping windows), then hand the whole set to
    // the scheduler as one batch: one capacity_updates count, one
    // fair-share solve.
    cap_batch_.clear();
    const Topology &topo = cluster_.topology();
    for (ResourceId rid : rids) {
        double fraction = 1.0;
        for (double f : active_[static_cast<std::size_t>(rid)])
            fraction = std::min(fraction, f);
        cap_batch_.emplace_back(
            rid, topo.resource(rid).nominal_capacity * fraction);
    }
    flows_.setCapacities(cap_batch_);
}

void
FaultInjector::updateGpu(int rank)
{
    double fraction = 1.0;
    for (double f : gpu_active_[static_cast<std::size_t>(rank)])
        fraction = std::min(fraction, f);
    executor_.setGpuSpeedFactor(rank, fraction);
}

void
FaultInjector::updateNvmeLatency()
{
    double fraction = 1.0;
    for (double f : nvme_active_)
        fraction = std::min(fraction, f);
    aio_.setLatencyFactor(1.0 / fraction);
}

void
FaultInjector::finalize(SimTime measured_begin, SimTime measured_end)
{
    const Topology &topo = cluster_.topology();
    for (std::size_t i = 0; i < impacts_.size(); ++i) {
        FaultImpact &im = impacts_[i];
        // Warm-up truncation resets the byte counters at the
        // measurement boundary, so baselines taken before it are
        // meaningless: report averages only for in-window faults.
        if (im.applied_at < measured_begin ||
            im.applied_at >= measured_end) {
            continue;
        }
        const SimTime t0 = im.applied_at;
        const SimTime t1 = im.restored
                               ? std::min(im.restored_at, measured_end)
                               : measured_end;
        for (std::size_t k = 0; k < snaps_[i].size(); ++k) {
            const Snapshot &s = snaps_[i][k];
            LinkImpact &li = im.links[k];
            const Bytes total = topo.resource(s.rid).log.totalBytes();
            if (t0 > measured_begin)
                li.avg_before = s.at_apply / (t0 - measured_begin);
            const Bytes during_end =
                im.restored ? s.at_restore : total;
            if (t1 > t0)
                li.avg_during = (during_end - s.at_apply) / (t1 - t0);
            if (im.restored && im.restored_at < measured_end) {
                li.avg_after = (total - s.at_restore) /
                               (measured_end - im.restored_at);
            }
        }
    }
}

} // namespace dstrain
