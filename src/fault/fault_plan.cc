/**
 * @file
 * Implementation of FaultPlan parsing, validation and rendering.
 */

#include "fault/fault_plan.hh"

#include <cmath>
#include <cstdlib>

#include "util/logging.hh"
#include "util/strings.hh"

namespace dstrain {

namespace {

/** The link-class names accepted as degrade/flap targets. */
const char *const kClassTargets[] = {
    "roce", "nvlink", "pcie-gpu", "pcie-nic", "pcie-nvme",
    "xgmi", "dram", "nvme-media", "iod",
};

/** Parse "<prefix><integer>"; returns false on any mismatch. */
bool
parseIndexed(std::string_view text, std::string_view prefix, int *out)
{
    if (!startsWith(text, prefix))
        return false;
    const std::string digits(text.substr(prefix.size()));
    if (digits.empty())
        return false;
    char *end = nullptr;
    const long v = std::strtol(digits.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0)
        return false;
    *out = static_cast<int>(v);
    return true;
}

/** Is @p name one of the link-class target spellings? */
bool
isClassTarget(std::string_view name)
{
    for (const char *cls : kClassTargets)
        if (name == cls)
            return true;
    return false;
}

/** Syntax check of a target for @p kind; empty string = OK. */
std::string
targetSyntaxError(FaultKind kind, const std::string &target)
{
    int idx = 0;
    switch (kind) {
      case FaultKind::LinkDegrade:
      case FaultKind::LinkFlap:
      case FaultKind::LinkDown: {
        // <class>[/n<k>|/rack<k>] | rail<r> | sw<j>
        if (parseIndexed(target, "rail", &idx) ||
            parseIndexed(target, "sw", &idx)) {
            return "";
        }
        const auto parts = split(target, '/');
        if (parts.empty() || parts.size() > 2 ||
            !isClassTarget(parts[0])) {
            return "expected a link class "
                   "(roce, nvlink, pcie-gpu, pcie-nic, pcie-nvme, "
                   "xgmi, dram, nvme-media, iod) optionally scoped "
                   "'/n<k>' or '/rack<k>', a rail 'rail<r>', or a "
                   "switch 'sw<j>'";
        }
        if (parts.size() == 2 && !parseIndexed(parts[1], "n", &idx) &&
            !parseIndexed(parts[1], "rack", &idx)) {
            return "bad scope '" + parts[1] +
                   "' (expected n<k> or rack<k>)";
        }
        return "";
      }
      case FaultKind::NicFailover: {
        // n<k>.nic<j>
        const auto parts = split(target, '.');
        if (parts.size() != 2 || !parseIndexed(parts[0], "n", &idx) ||
            !parseIndexed(parts[1], "nic", &idx)) {
            return "expected n<k>.nic<j>";
        }
        return "";
      }
      case FaultKind::GpuStraggler:
        if (!parseIndexed(target, "rank", &idx))
            return "expected rank<k>";
        return "";
      case FaultKind::NvmeDegrade:
        if (!parseIndexed(target, "n", &idx))
            return "expected n<k>";
        return "";
      case FaultKind::GpuDown:
        if (!parseIndexed(target, "rank", &idx))
            return "expected rank<k>";
        return "";
      case FaultKind::NodeDown:
        if (!parseIndexed(target, "n", &idx))
            return "expected n<k>";
        return "";
    }
    return "unknown fault kind";
}

/** Does this kind use the fraction field? */
bool
usesFraction(FaultKind kind)
{
    return kind == FaultKind::LinkDegrade ||
           kind == FaultKind::GpuStraggler ||
           kind == FaultKind::NvmeDegrade;
}

/** Parse a kind spelling; returns false when unknown. */
bool
parseKind(std::string_view name, FaultKind *out)
{
    if (name == "degrade")
        *out = FaultKind::LinkDegrade;
    else if (name == "flap")
        *out = FaultKind::LinkFlap;
    else if (name == "linkdown")
        *out = FaultKind::LinkDown;
    else if (name == "nicdown")
        *out = FaultKind::NicFailover;
    else if (name == "straggler")
        *out = FaultKind::GpuStraggler;
    else if (name == "nvme")
        *out = FaultKind::NvmeDegrade;
    else if (name == "gpudown")
        *out = FaultKind::GpuDown;
    else if (name == "nodedown")
        *out = FaultKind::NodeDown;
    else
        return false;
    return true;
}

/** Parse a finite nonnegative double; returns false on any mismatch.
 * Rejecting non-finite values matters: a NaN fraction would slip
 * through the (0, 1] range checks (every comparison is false). */
bool
parseNumber(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v) || v < 0.0)
        return false;
    *out = v;
    return true;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LinkDegrade:
        return "degrade";
      case FaultKind::LinkFlap:
        return "flap";
      case FaultKind::LinkDown:
        return "linkdown";
      case FaultKind::NicFailover:
        return "nicdown";
      case FaultKind::GpuStraggler:
        return "straggler";
      case FaultKind::NvmeDegrade:
        return "nvme";
      case FaultKind::GpuDown:
        return "gpudown";
      case FaultKind::NodeDown:
        return "nodedown";
    }
    panic("unknown FaultKind %d", static_cast<int>(kind));
}

bool
isHardFault(FaultKind kind)
{
    return kind == FaultKind::GpuDown || kind == FaultKind::NodeDown;
}

bool
hasHardFaults(const FaultPlan &plan)
{
    for (const FaultEvent &ev : plan.events)
        if (isHardFault(ev.kind))
            return true;
    return false;
}

std::string
FaultEvent::str() const
{
    std::string out = csprintf("%s@%g", faultKindName(kind), begin);
    if (duration > 0.0)
        out += csprintf("+%g", duration);
    out += ":" + target;
    if (usesFraction(kind))
        out += csprintf(":%g", fraction);
    return out;
}

std::vector<ConfigError>
FaultPlan::validate() const
{
    std::vector<ConfigError> errors;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FaultEvent &ev = events[i];
        const std::string field = csprintf("faults.events[%zu]", i);
        if (ev.begin < 0.0)
            errors.push_back({field, "begin time must be >= 0"});
        if (ev.duration < 0.0)
            errors.push_back({field, "duration must be >= 0"});
        if ((isHardFault(ev.kind) || ev.kind == FaultKind::LinkDown) &&
            ev.duration > 0.0) {
            errors.push_back(
                {field, csprintf("%s is permanent and takes no "
                                 "'+<duration>'",
                                 faultKindName(ev.kind))});
        }
        if (usesFraction(ev.kind) &&
            (ev.fraction <= 0.0 || ev.fraction > 1.0)) {
            errors.push_back(
                {field, csprintf("fraction %g outside (0, 1]",
                                 ev.fraction)});
        }
        const std::string terr = targetSyntaxError(ev.kind, ev.target);
        if (!terr.empty())
            errors.push_back({field, "target '" + ev.target +
                                         "': " + terr});
    }
    if (!events.empty()) {
        if (retry.detect_delay <= 0.0)
            errors.push_back(
                {"faults.retry.detect_delay", "must be > 0"});
        if (retry.backoff <= 0.0)
            errors.push_back({"faults.retry.backoff", "must be > 0"});
        if (retry.max_retries < 0)
            errors.push_back(
                {"faults.retry.max_retries", "must be >= 0"});
    }
    return errors;
}

std::string
FaultPlan::str() const
{
    std::vector<std::string> parts;
    parts.reserve(events.size());
    for (const FaultEvent &ev : events)
        parts.push_back(ev.str());
    return join(parts, ",");
}

FaultPlan
parseFaultSpec(const std::string &spec, std::vector<ConfigError> *errors)
{
    DSTRAIN_ASSERT(errors != nullptr, "parseFaultSpec needs an error sink");
    FaultPlan plan;
    std::size_t pos = 0;
    std::size_t ordinal = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string raw = spec.substr(pos, comma - pos);
        // Character offset of the trimmed item within the spec, so an
        // error in a long comma-joined spec is locatable.
        const std::size_t lead = raw.find_first_not_of(" \t\r\n");
        const std::size_t offset =
            pos + (lead == std::string::npos ? 0 : lead);
        pos = comma + 1;
        const std::string item = trim(raw);
        if (item.empty()) {
            if (pos > spec.size())
                break;
            continue;
        }
        const std::size_t idx = ordinal++;
        const std::string field =
            csprintf("faults[%zu] at char %zu ('%s')", idx, offset,
                     item.c_str());

        // <kind>@<begin>[+<duration>]:<target>[:<fraction>]
        const auto at = item.find('@');
        if (at == std::string::npos) {
            errors->push_back({field, "missing '@<begin>'"});
            continue;
        }
        FaultEvent ev;
        if (!parseKind(item.substr(0, at), &ev.kind)) {
            errors->push_back(
                {field, "unknown kind '" + item.substr(0, at) +
                            "' (degrade, flap, linkdown, nicdown, "
                            "straggler, nvme, gpudown, nodedown)"});
            continue;
        }
        const auto colon = item.find(':', at);
        if (colon == std::string::npos) {
            errors->push_back({field, "missing ':<target>'"});
            continue;
        }

        std::string when = item.substr(at + 1, colon - at - 1);
        const auto plus = when.find('+');
        std::string dur;
        if (plus != std::string::npos) {
            dur = when.substr(plus + 1);
            when = when.substr(0, plus);
        }
        if (!parseNumber(when, &ev.begin)) {
            errors->push_back({field, "bad begin time '" + when + "'"});
            continue;
        }
        if (plus != std::string::npos &&
            !parseNumber(dur, &ev.duration)) {
            errors->push_back({field, "bad duration '" + dur + "'"});
            continue;
        }

        const auto rest = split(item.substr(colon + 1), ':');
        ev.target = rest.empty() ? "" : rest[0];
        if (rest.size() > 2) {
            errors->push_back({field, "too many ':' fields"});
            continue;
        }
        if (rest.size() == 2) {
            if (!usesFraction(ev.kind)) {
                errors->push_back(
                    {field, csprintf("%s takes no fraction",
                                     faultKindName(ev.kind))});
                continue;
            }
            if (!parseNumber(rest[1], &ev.fraction)) {
                errors->push_back(
                    {field, "bad fraction '" + rest[1] + "'"});
                continue;
            }
        }
        plan.events.push_back(std::move(ev));
    }

    // Structural validation on what parsed, so bad ranges and bad
    // target syntax surface from the same call.
    for (ConfigError &e : plan.validate())
        errors->push_back(std::move(e));
    return plan;
}

} // namespace dstrain
