/**
 * @file
 * FaultInjector: executes a FaultPlan against a live simulation.
 *
 * arm() resolves every FaultEvent's target against the cluster
 * (fatal on a target that does not exist — a configuration error)
 * and schedules one apply and, for finite windows, one restore event
 * on the simulation's event queue. Applying a fault mutates resource
 * capacities through FlowScheduler::setCapacity() — never directly —
 * so in-flight flow rates re-waterfill at the fault instant and the
 * streaming telemetry records the degraded rates exactly. Restores
 * return capacities to Resource::nominal_capacity (respecting other
 * still-active faults on the same resource: the effective fraction is
 * the minimum across overlapping windows).
 *
 * The injector also snapshots per-link byte counters at each apply
 * and restore so finalize() can report before/during/after average
 * bandwidth per affected link without retained segments.
 */

#ifndef DSTRAIN_FAULT_FAULT_INJECTOR_HH
#define DSTRAIN_FAULT_FAULT_INJECTOR_HH

#include <utility>
#include <vector>

#include "engine/executor.hh"
#include "fault/fault_plan.hh"

namespace dstrain {

class TopologyChangeBus;

/** Measured effect of one fault on one affected link direction. */
struct LinkImpact {
    std::string label;        ///< resource label, e.g. "n0.roce0.fwd"
    Bps nominal = 0.0;        ///< as-built capacity
    Bps faulted = 0.0;        ///< capacity during the window
    Bps avg_before = 0.0;     ///< mean rate, measurement start -> apply
    Bps avg_during = 0.0;     ///< mean rate over the fault window
    Bps avg_after = 0.0;      ///< mean rate, restore -> measurement end
};

/** Everything measured about one executed fault. */
struct FaultImpact {
    FaultEvent event;             ///< the fault as configured
    SimTime applied_at = 0.0;     ///< when it hit
    SimTime restored_at = 0.0;    ///< when it cleared (if restored)
    bool restored = false;        ///< false = lasted to end of run
    std::vector<LinkImpact> links;

    /**
     * Mean iteration time of iterations overlapping the fault window
     * divided by the mean of clean iterations; 1.0 when either set is
     * empty. Filled in by Experiment::run().
     */
    double iteration_slowdown = 1.0;
};

/**
 * Executes one FaultPlan. Construct after the engines, arm() before
 * running the simulation, finalize() after it drains.
 */
class FaultInjector
{
  public:
    /** A resolved event: which resources / rank / node it touches. */
    struct Resolved {
        std::vector<ResourceId> rids;  ///< capacity-scaled resources
        int rank = -1;                 ///< straggler/gpudown rank (or -1)
        int nvme_node = -1;            ///< NVMe-degraded node (or -1)
        int node = -1;                 ///< nodedown node (or -1)
    };

    /** All references must outlive the injector. */
    FaultInjector(Simulation &sim, Cluster &cluster, FlowScheduler &flows,
                  TransferManager &tm, Executor &executor, AioEngine &aio,
                  FaultPlan plan);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Resolve targets and schedule the plan's apply/restore events.
     * Call exactly once, before the simulation runs. fatal() on a
     * target that does not exist in this cluster.
     */
    void arm();

    /**
     * Compute the per-link window averages against the measurement
     * window [@p measured_begin, @p measured_end). Call after the
     * simulation has drained and logs are finalized. Averages are
     * reported only for faults applied inside the window (a fault in
     * warm-up has its byte baselines truncated away).
     */
    void finalize(SimTime measured_begin, SimTime measured_end);

    /** Impact records, in plan order. */
    const std::vector<FaultImpact> &impacts() const { return impacts_; }

    /** The plan being executed. */
    const FaultPlan &plan() const { return plan_; }

    /** The resolution of event @p i (valid after arm()). */
    const Resolved &resolved(std::size_t i) const { return resolved_[i]; }

    /**
     * Install the hard-fault sink. Applying a gpudown/nodedown event
     * zeroes the affected resources and hands the event index to this
     * handler (the RecoveryManager) instead of scheduling a restore;
     * applying a hard fault without a handler is fatal() — the run
     * could only deadlock.
     */
    void setHardFaultHandler(std::function<void(std::size_t)> handler)
    {
        hard_handler_ = std::move(handler);
    }

    /**
     * Bring event @p i's resources back to nominal (respecting other
     * overlapping faults). The restart-recovery path calls this when
     * the replacement hardware joins; elastic recovery never does —
     * a dead node's links stay down.
     */
    void restoreHard(std::size_t i);

    /**
     * Publish every capacity change on @p bus (the resilience
     * coordinator's topology-change bus, net/resilience.hh), so the
     * router's cached routes are invalidated after the configured
     * reconvergence window. nullptr (the default) publishes nothing —
     * routes stay permanently cached, the pre-resilience behavior.
     */
    void setTopologyBus(TopologyChangeBus *bus) { bus_ = bus; }

  private:
    /** Byte-counter baselines of one affected resource. */
    struct Snapshot {
        ResourceId rid = kNoResource;
        Bytes at_apply = 0.0;
        Bytes at_restore = 0.0;
    };

    /** Resolve one event's target; fatal() when it matches nothing. */
    Resolved resolve(const FaultEvent &ev) const;

    void apply(std::size_t i);
    void restore(std::size_t i);

    /** (De)activate @p fraction on a resource (bookkeeping only; the
     * capacity takes effect via updateCapacities()). */
    void pushFraction(ResourceId rid, double fraction);
    void popFraction(ResourceId rid, double fraction);

    /**
     * Re-derive the capacities of @p rids from their active fault
     * fractions and apply them as one FlowScheduler::setCapacities()
     * batch — a multi-link fault event triggers one solve, not one
     * per link.
     */
    void updateCapacities(const std::vector<ResourceId> &rids);

    /** Re-derive a rank's straggler factor / the aio latency factor. */
    void updateGpu(int rank);
    void updateNvmeLatency();

    Simulation &sim_;
    Cluster &cluster_;
    FlowScheduler &flows_;
    TransferManager &tm_;
    Executor &executor_;
    AioEngine &aio_;
    FaultPlan plan_;

    std::vector<Resolved> resolved_;
    std::vector<FaultImpact> impacts_;
    std::vector<std::vector<Snapshot>> snaps_;  ///< per event

    /** Active fractions per resource (indexed by ResourceId). */
    std::vector<std::vector<double>> active_;
    /** Active straggler fractions per rank. */
    std::vector<std::vector<double>> gpu_active_;
    /** Active NVMe fractions (latency factor = 1 / min). */
    std::vector<double> nvme_active_;

    /** Reusable batch buffer for updateCapacities(). */
    std::vector<std::pair<ResourceId, Bps>> cap_batch_;

    /** Sink for applied hard faults (the RecoveryManager). */
    std::function<void(std::size_t)> hard_handler_;

    /** Optional capacity-change sink (degraded-mode resilience). */
    TopologyChangeBus *bus_ = nullptr;

    bool armed_ = false;
};

} // namespace dstrain

#endif // DSTRAIN_FAULT_FAULT_INJECTOR_HH
