/**
 * @file
 * FaultPlan: a deterministic, declarative schedule of hardware faults
 * to inject into a run.
 *
 * Real multi-node training jobs see links that degrade or flap, NICs
 * that die mid-collective, GPUs that throttle, and NVMe stacks that
 * slow down. dstrain models each as a timed mutation of the affected
 * resource capacities (or compute/latency factors): the FaultInjector
 * schedules one apply and one restore event per FaultEvent on the
 * simulation's event queue, so a plan is bit-reproducible — the same
 * seed and plan always produce the same report, serially or under the
 * parallel sweep runner.
 *
 * Plans come from code (ExperimentConfig::faults) or from the CLI's
 * `--faults` spec string; see parseFaultSpec() for the grammar.
 */

#ifndef DSTRAIN_FAULT_FAULT_PLAN_HH
#define DSTRAIN_FAULT_FAULT_PLAN_HH

#include <string>
#include <vector>

#include "net/transfer_manager.hh"
#include "util/config_error.hh"
#include "util/units.hh"

namespace dstrain {

/** The fault taxonomy. */
enum class FaultKind {
    /**
     * A link class runs at `fraction` of nominal bandwidth for the
     * window (cable errors, congestion from a neighboring job).
     * Target namespaces:
     *   - a link-class name (`roce`, `nvlink`, `pcie-gpu`,
     *     `pcie-nic`, `pcie-nvme`, `xgmi`, `dram`, `nvme-media`,
     *     `iod`), optionally scoped to one node with `/n<k>` or to
     *     one rack with `/rack<k>` (failure domains come from the
     *     fabric generator; see hw/fabric.hh);
     *   - `rail<r>`: the RoCE uplinks of NIC `r` on every node (a
     *     rail-optimized fabric loses a whole rail switch this way);
     *   - `sw<j>`: every link touching switch `j` — uplinks and
     *     inter-switch trunks alike.
     */
    LinkDegrade,

    /**
     * The links go fully down (capacity 0) and come back at the end
     * of the window. Same targets as LinkDegrade. In-flight flows
     * stall; with retries enabled the transfer manager reroutes them.
     */
    LinkFlap,

    /**
     * Permanent link kill: the targeted links drop to capacity zero
     * at `begin` and never restore — a fiber cut or a fried switch,
     * killing fabric without killing GPUs. Same failure-domain
     * targets as LinkDegrade (`<class>[/n<k>|/rack<k>]`, `rail<r>`,
     * `sw<j>`); takes no duration and no fraction. Soft from the
     * recovery manager's perspective (no checkpoint rewind); the
     * resilience layer's reconvergence/reroute machinery is what
     * carries traffic around it.
     */
    LinkDown,

    /**
     * One NIC dies: its PCIe attach and its RoCE links drop to zero
     * for the window. Target: `n<k>.nic<j>`. Traffic pinned through
     * the dead NIC fails over to the node's alternate NIC.
     */
    NicFailover,

    /**
     * A straggler GPU: rank `rank<k>` computes at `fraction` of its
     * normal speed for the window (thermal throttling, ECC retries).
     */
    GpuStraggler,

    /**
     * Node `n<k>`'s NVMe subsystem degrades: PCIe-NVMe and media
     * capacities scale by `fraction` and the aio submission latency
     * scales by 1/`fraction` for the window.
     */
    NvmeDegrade,

    /**
     * Hard failure: the GPU serving rank `rank<k>` dies at `begin`
     * and stays dead — its attach links drop to zero, the in-flight
     * iteration is aborted and the RecoveryManager takes over
     * (checkpoint restore + replay). Takes no duration and no
     * fraction; without a recovery policy the run is fatal.
     */
    GpuDown,

    /**
     * Hard failure: node `n<k>` dies wholesale — every resource it
     * owns drops to zero. Recovery either replaces the node
     * (`restart`) or re-shards state across the survivors
     * (`elastic`). Takes no duration and no fraction.
     */
    NodeDown,
};

/** Is @p kind a hard (permanent, recovery-driving) failure? */
bool isHardFault(FaultKind kind);

/** Spec spelling of a kind (`degrade`, `flap`, `nicdown`, ...). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent {
    FaultKind kind = FaultKind::LinkDegrade;

    /** When the fault hits, in simulated seconds from run start. */
    SimTime begin = 0.0;

    /** Window length; 0 = the rest of the run (never restored). */
    SimTime duration = 0.0;

    /** What is hit; grammar depends on `kind` (see FaultKind docs). */
    std::string target;

    /**
     * Remaining fraction of nominal capacity/speed during the window
     * (LinkDegrade, GpuStraggler, NvmeDegrade). Ignored for LinkFlap
     * and NicFailover, which always drop to zero.
     */
    double fraction = 0.5;

    /** Round-trippable spec form, e.g. "degrade@1+0.5:roce:0.4". */
    std::string str() const;
};

/** A full fault schedule plus the recovery policy it implies. */
struct FaultPlan {
    std::vector<FaultEvent> events;

    /**
     * Stranded-flow recovery installed on the TransferManager when
     * the plan is non-empty. Enabled by default: a plan that downs
     * links without recovery would deadlock the run.
     */
    RetryPolicy retry{true};

    /** No faults scheduled? (An empty plan changes nothing.) */
    bool empty() const { return events.empty(); }

    /** Structural checks; empty result = valid. */
    std::vector<ConfigError> validate() const;

    /** The comma-joined spec form of all events. */
    std::string str() const;
};

/** Does the plan schedule any hard (gpudown/nodedown) fault? */
bool hasHardFaults(const FaultPlan &plan);

/**
 * Parse a CLI fault spec: comma-separated events of the form
 *
 *   <kind>@<begin>[+<duration>]:<target>[:<fraction>]
 *
 * where <kind> is `degrade`, `flap`, `linkdown`, `nicdown`,
 * `straggler`, `nvme`, `gpudown` or `nodedown`; times are simulated
 * seconds; a missing duration means the rest of the run (and the
 * permanent kinds linkdown / gpudown / nodedown reject a duration).
 * Examples:
 *
 *   degrade@1+0.5:roce:0.4      RoCE at 40% for 0.5 s starting at 1 s
 *   flap@2+0.2:roce/n1          node 1's RoCE links down for 200 ms
 *   degrade@1+1:rail1:0.3       rail 1 (every node's NIC 1) at 30%
 *   flap@2+0.5:sw3              everything on switch 3 down for 0.5 s
 *   linkdown@2:rail1            rail 1 dies at 2 s and stays dead
 *   degrade@1:roce/rack0:0.5    rack 0's RoCE at half speed onwards
 *   nicdown@1+1:n0.nic1         node 0's NIC 1 dead for 1 s
 *   straggler@0+2:rank3:0.6     rank 3 at 60% speed for 2 s
 *   nvme@1:n0:0.5               node 0's NVMe at half speed onwards
 *   gpudown@3:rank2             rank 2's GPU dies at 3 s
 *   nodedown@3:n1               node 1 dies at 3 s
 *
 * Problems are appended to @p errors; each error's field names the
 * event's ordinal, its character offset in @p spec, and the offending
 * item text, so a bad item in a long spec is locatable. The returned
 * plan contains the events that did parse.
 */
FaultPlan parseFaultSpec(const std::string &spec,
                         std::vector<ConfigError> *errors);

} // namespace dstrain

#endif // DSTRAIN_FAULT_FAULT_PLAN_HH
