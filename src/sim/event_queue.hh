/**
 * @file
 * The discrete-event queue at the heart of the dstrain simulator.
 *
 * Events are (time, sequence, callback) triples ordered by time and,
 * for equal times, by insertion order; the sequence number makes the
 * simulation fully deterministic regardless of the container's
 * tie-breaking behavior.
 */

#ifndef DSTRAIN_SIM_EVENT_QUEUE_HH
#define DSTRAIN_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hh"

namespace dstrain {

/** Identifies a scheduled event so it can be cancelled. */
using EventId = std::uint64_t;

/**
 * A time-ordered queue of callbacks with deterministic FIFO
 * tie-breaking and O(log n) scheduling.
 *
 * Cancellation is lazy: a cancelled event's heap entry remains and is
 * skipped on pop. Liveness is tracked through a slot/generation
 * scheme instead of a hash set: an EventId encodes (slot index,
 * generation); a slot is released (generation bumped) when its entry
 * leaves the heap, so cancelling an executed, already-cancelled, or
 * unknown id is an O(1) safe no-op and the schedule/cancel/pop hot
 * paths perform no hashing and no per-event allocation beyond the
 * heap entry itself (slots are recycled through a free list).
 *
 * EventId 0 is never issued, so callers may use 0 as a "no pending
 * event" sentinel; cancel(0) is always a no-op returning false.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (the time of the last executed event). */
    SimTime now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when.
     *
     * @p when must not be in the past; scheduling at exactly now()
     * is allowed and runs after all currently pending events at the
     * same timestamp (FIFO order).
     * @return an id usable with cancel().
     */
    EventId schedule(SimTime when, Callback cb);

    /** Schedule @p cb @p delay seconds after now(). */
    EventId scheduleAfter(SimTime delay, Callback cb);

    /**
     * Cancel a pending event.
     * @return true if the event was pending and is now cancelled;
     *         false for executed, already-cancelled, or unknown ids.
     */
    bool cancel(EventId id);

    /**
     * Move a pending event to a new time, keeping its callback.
     *
     * Equivalent to cancel(id) + schedule(when, same-callback) — the
     * event is assigned a fresh sequence number, so it runs after
     * events already pending at @p when — but without re-copying the
     * callback. @p id must be pending (not executed or cancelled);
     * the returned id replaces it.
     */
    EventId reschedule(EventId id, SimTime when);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (non-cancelled, pending) events. */
    std::size_t size() const { return live_; }

    /**
     * Execute events until the queue drains.
     * @return the time of the last executed event.
     */
    SimTime run();

    /**
     * Execute events with time <= @p until, then advance the clock
     * to exactly @p until.
     * @return the new current time (== @p until).
     */
    SimTime runUntil(SimTime until);

    /**
     * Execute at most one event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool step();

    /** Total number of events executed since construction. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry {
        SimTime when;
        std::uint64_t seq;  ///< FIFO tie-break for equal times
        EventId id;         ///< encodeId(generation, slot)
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * Liveness record for one event slot. The callback lives here,
     * not in the heap entry, so heap operations shuffle only small
     * trivially-copyable entries and popping never has to move from
     * the priority_queue's const top().
     */
    struct Slot {
        Callback cb;            ///< pending callback (null once released)
        std::uint32_t gen = 0;  ///< bumped when the entry leaves the heap
        bool live = false;      ///< pending and not cancelled
    };

    // Ids are biased by +1 so that id 0 is never issued (callers use
    // 0 as a "no pending event" sentinel). slotOf(0) deliberately
    // decodes to 0xFFFFFFFF, an out-of-range slot that cancel()
    // rejects.
    static EventId encodeId(std::uint32_t gen, std::uint32_t slot)
    {
        return ((static_cast<EventId>(gen) << 32) | slot) + 1;
    }
    static std::uint32_t slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id - 1);
    }
    static std::uint32_t genOf(EventId id)
    {
        return static_cast<std::uint32_t>((id - 1) >> 32);
    }

    /** Bump the generation and recycle the slot. */
    void releaseSlot(std::uint32_t slot);

    /** Pop and run the earliest live event; caller checked non-empty. */
    void popAndRun();

    /** Drop cancelled entries from the top of the heap. */
    void skimCancelled();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    std::size_t live_ = 0;
    SimTime now_ = 0.0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
};

} // namespace dstrain

#endif // DSTRAIN_SIM_EVENT_QUEUE_HH
