/**
 * @file
 * The discrete-event queue at the heart of the dstrain simulator.
 *
 * Events are (time, sequence, callback) triples ordered by time and,
 * for equal times, by insertion order; the sequence number makes the
 * simulation fully deterministic regardless of the container's
 * tie-breaking behavior.
 */

#ifndef DSTRAIN_SIM_EVENT_QUEUE_HH
#define DSTRAIN_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.hh"

namespace dstrain {

/** Identifies a scheduled event so it can be cancelled. */
using EventId = std::uint64_t;

/**
 * A time-ordered queue of callbacks with deterministic FIFO
 * tie-breaking and O(log n) scheduling.
 *
 * Cancellation is lazy: a cancelled event's heap entry remains and is
 * skipped on pop. The set of pending ids is tracked explicitly, so
 * cancelling an executed or unknown id is a safe no-op.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (the time of the last executed event). */
    SimTime now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when.
     *
     * @p when must not be in the past; scheduling at exactly now()
     * is allowed and runs after all currently pending events at the
     * same timestamp (FIFO order).
     * @return an id usable with cancel().
     */
    EventId schedule(SimTime when, Callback cb);

    /** Schedule @p cb @p delay seconds after now(). */
    EventId scheduleAfter(SimTime delay, Callback cb);

    /**
     * Cancel a pending event.
     * @return true if the event was pending and is now cancelled;
     *         false for executed, already-cancelled, or unknown ids.
     */
    bool cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return pending_.empty(); }

    /** Number of live (non-cancelled, pending) events. */
    std::size_t size() const { return pending_.size(); }

    /**
     * Execute events until the queue drains.
     * @return the time of the last executed event.
     */
    SimTime run();

    /**
     * Execute events with time <= @p until, then advance the clock
     * to exactly @p until.
     * @return the new current time (== @p until).
     */
    SimTime runUntil(SimTime until);

    /**
     * Execute at most one event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool step();

    /** Total number of events executed since construction. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry {
        SimTime when;
        EventId id;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /** Pop and run the earliest live event; caller checked non-empty. */
    void popAndRun();

    /** Drop cancelled entries from the top of the heap. */
    void skimCancelled();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> pending_;  ///< live event ids
    SimTime now_ = 0.0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
};

} // namespace dstrain

#endif // DSTRAIN_SIM_EVENT_QUEUE_HH
