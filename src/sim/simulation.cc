/**
 * @file
 * Implementation of the simulation context.
 */

#include "sim/simulation.hh"

#include "util/logging.hh"

namespace dstrain {

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed)
{
}

void
Simulation::checkEventLimit() const
{
    if (events_.executedCount() > event_limit_) {
        panic("event limit exceeded (%llu events executed); "
              "likely a zero-delay rescheduling loop",
              static_cast<unsigned long long>(events_.executedCount()));
    }
}

} // namespace dstrain
