/**
 * @file
 * Implementation of the discrete-event queue.
 */

#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace dstrain {

EventId
EventQueue::schedule(SimTime when, Callback cb)
{
    DSTRAIN_ASSERT(when >= now_,
                   "cannot schedule in the past (when=%g, now=%g)",
                   when, now_);
    DSTRAIN_ASSERT(cb != nullptr, "null event callback");

    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    slots_[slot].live = true;
    slots_[slot].cb = std::move(cb);
    const EventId id = encodeId(slots_[slot].gen, slot);
    heap_.push(Entry{when, next_seq_++, id});
    ++live_;
    return id;
}

EventId
EventQueue::scheduleAfter(SimTime delay, Callback cb)
{
    DSTRAIN_ASSERT(delay >= 0.0, "negative delay %g", delay);
    return schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint32_t slot = slotOf(id);
    if (slot >= slots_.size())
        return false;
    Slot &s = slots_[slot];
    if (s.gen != genOf(id) || !s.live)
        return false;
    s.live = false;
    s.cb = nullptr;  // release captured state eagerly
    --live_;
    return true;
}

EventId
EventQueue::reschedule(EventId id, SimTime when)
{
    DSTRAIN_ASSERT(when >= now_,
                   "cannot reschedule into the past (when=%g, now=%g)",
                   when, now_);
    const std::uint32_t slot = slotOf(id);
    DSTRAIN_ASSERT(slot < slots_.size(), "reschedule of unknown event");
    Slot &s = slots_[slot];
    DSTRAIN_ASSERT(s.gen == genOf(id) && s.live,
                   "reschedule of executed or cancelled event");
    // Bump the generation: the old heap entry goes stale (skimmed on
    // pop without recycling the slot, which the new id still owns).
    ++s.gen;
    const EventId fresh = encodeId(s.gen, slot);
    heap_.push(Entry{when, next_seq_++, fresh});
    return fresh;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    ++slots_[slot].gen;
    slots_[slot].live = false;
    slots_[slot].cb = nullptr;
    free_slots_.push_back(slot);
}

void
EventQueue::skimCancelled()
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        const std::uint32_t slot = slotOf(top.id);
        const Slot &s = slots_[slot];
        if (s.gen == genOf(top.id) && s.live)
            break;
        // Cancelled (generation still matches) or stale: recycle the
        // slot only if this entry still owns it.
        if (s.gen == genOf(top.id))
            releaseSlot(slot);
        heap_.pop();
    }
}

void
EventQueue::popAndRun()
{
    skimCancelled();
    DSTRAIN_ASSERT(!heap_.empty(), "popAndRun on empty queue");
    const Entry top = heap_.top();
    heap_.pop();
    // The callback lives in the slot; move it out, then release the
    // slot before invoking so a cancel() of this id from inside the
    // callback is correctly rejected as "already executed".
    Callback cb = std::move(slots_[slotOf(top.id)].cb);
    releaseSlot(slotOf(top.id));
    --live_;
    DSTRAIN_ASSERT(top.when >= now_, "time went backwards");
    now_ = top.when;
    ++executed_;
    cb();
}

bool
EventQueue::step()
{
    if (empty())
        return false;
    popAndRun();
    return true;
}

SimTime
EventQueue::run()
{
    while (!empty())
        popAndRun();
    return now_;
}

SimTime
EventQueue::runUntil(SimTime until)
{
    DSTRAIN_ASSERT(until >= now_, "runUntil target in the past");
    while (!empty()) {
        skimCancelled();
        if (heap_.empty() || heap_.top().when > until)
            break;
        popAndRun();
    }
    now_ = until;
    return now_;
}

} // namespace dstrain
