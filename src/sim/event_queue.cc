/**
 * @file
 * Implementation of the discrete-event queue.
 */

#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace dstrain {

EventId
EventQueue::schedule(SimTime when, Callback cb)
{
    DSTRAIN_ASSERT(when >= now_,
                   "cannot schedule in the past (when=%g, now=%g)",
                   when, now_);
    DSTRAIN_ASSERT(cb != nullptr, "null event callback");
    EventId id = next_id_++;
    heap_.push(Entry{when, id, std::move(cb)});
    pending_.insert(id);
    return id;
}

EventId
EventQueue::scheduleAfter(SimTime delay, Callback cb)
{
    DSTRAIN_ASSERT(delay >= 0.0, "negative delay %g", delay);
    return schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    return pending_.erase(id) > 0;
}

void
EventQueue::skimCancelled()
{
    while (!heap_.empty() && pending_.count(heap_.top().id) == 0)
        heap_.pop();
}

void
EventQueue::popAndRun()
{
    skimCancelled();
    DSTRAIN_ASSERT(!heap_.empty(), "popAndRun on empty queue");
    Entry top = heap_.top();
    heap_.pop();
    pending_.erase(top.id);
    DSTRAIN_ASSERT(top.when >= now_, "time went backwards");
    now_ = top.when;
    ++executed_;
    top.cb();
}

bool
EventQueue::step()
{
    if (empty())
        return false;
    popAndRun();
    return true;
}

SimTime
EventQueue::run()
{
    while (!empty())
        popAndRun();
    return now_;
}

SimTime
EventQueue::runUntil(SimTime until)
{
    DSTRAIN_ASSERT(until >= now_, "runUntil target in the past");
    while (!empty()) {
        skimCancelled();
        if (heap_.empty() || heap_.top().when > until)
            break;
        popAndRun();
    }
    now_ = until;
    return now_;
}

} // namespace dstrain
