/**
 * @file
 * The simulation context: owns the event queue and the deterministic
 * RNG, and provides run-control for every dstrain experiment.
 *
 * Telemetry deliberately does not use periodic wake-up events: links
 * record (interval, rate) segments as flow rates change, and series
 * are bucketed after the fact. This keeps the event count proportional
 * to the modeled work and makes runs exactly reproducible.
 */

#ifndef DSTRAIN_SIM_SIMULATION_HH
#define DSTRAIN_SIM_SIMULATION_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace dstrain {

/**
 * Top-level simulation context.
 *
 * One Simulation instance corresponds to one experiment run. All
 * model components hold a reference to it for scheduling and for
 * reading the clock.
 */
class Simulation
{
  public:
    /** Create a simulation; @p seed drives all stochastic elements. */
    explicit Simulation(std::uint64_t seed = 1);

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** The event queue. */
    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }

    /** The deterministic RNG for this run. */
    Rng &rng() { return rng_; }

    /** Current simulated time. */
    SimTime now() const { return events_.now(); }

    /**
     * Run to completion.
     * @return final simulated time.
     */
    SimTime run() { return events_.run(); }

    /** Run until a given simulated time. */
    SimTime runUntil(SimTime t) { return events_.runUntil(t); }

    /**
     * Guard against runaway simulations: run() panics if more than
     * this many events execute. Defaults to 200 million.
     */
    void setEventLimit(std::uint64_t limit) { event_limit_ = limit; }

    /** The configured event limit. */
    std::uint64_t eventLimit() const { return event_limit_; }

    /**
     * Check the event limit; called by long-running drivers between
     * phases. Panics when exceeded (indicates a modeling bug such as
     * a zero-length self-rescheduling loop).
     */
    void checkEventLimit() const;

  private:
    EventQueue events_;
    Rng rng_;
    std::uint64_t event_limit_ = 200'000'000;
};

} // namespace dstrain

#endif // DSTRAIN_SIM_SIMULATION_HH
