/**
 * @file
 * The training-strategy configurations the paper evaluates: PyTorch
 * DDP, Megatron-LM (TP x PP x DP), and DeepSpeed ZeRO stages 1-3
 * with optional CPU (ZeRO-Offload) or NVMe (ZeRO-Infinity)
 * offloading. This header is pure data — the memory planner and the
 * execution strategies both consume it.
 */

#ifndef DSTRAIN_MODEL_PARALLELISM_HH
#define DSTRAIN_MODEL_PARALLELISM_HH

#include <string>

namespace dstrain {

/** The training libraries/stages under comparison. */
enum class StrategyKind {
    Ddp,       ///< PyTorch Distributed Data-Parallel
    Megatron,  ///< Megatron-LM tensor/pipeline model parallelism
    Zero1,     ///< DeepSpeed ZeRO stage 1 (optimizer partitioned)
    Zero2,     ///< stage 2 (optimizer + gradients partitioned)
    Zero3,     ///< stage 3 (all model states partitioned)
    Fsdp,      ///< PyTorch FSDP (flat-param shards, bounded prefetch)
    Moe,       ///< Expert parallelism (all-to-all dispatch/combine)
    Hybrid3d,  ///< DP x TP x PP with ZeRO-sharded data parallelism
};

/** Offload target for model states (paper Table I). */
enum class OffloadTarget {
    None,
    Cpu,   ///< ZeRO-Offload: optimizer states + CPU Adam
    Nvme,  ///< ZeRO-Infinity: NVMe staging (ZeRO-3 only)
};

/** A full strategy configuration. */
struct StrategyConfig {
    StrategyKind kind = StrategyKind::Ddp;

    /** Where optimizer states live / where the optimizer runs. */
    OffloadTarget offload = OffloadTarget::None;

    /**
     * ZeRO-Infinity option: offload the fp16 parameters too (paper's
     * "optimizer & parameter" NVMe configurations).
     */
    bool offload_params = false;

    /**
     * Tensor-parallel degree. For Megatron-LM this is its TP axis;
     * for ZeRO stages 1/2 a value > 1 selects the *hybrid* mode the
     * DeepSpeed blog describes (paper Sec. II-C [119]): Megatron-style
     * tensor parallelism inside each group, ZeRO partitioning across
     * the data-parallel replicas. An extension beyond the paper's
     * evaluation; see bench/extension_hybrid.
     */
    int tensor_parallel = 1;

    /** Megatron/3D-hybrid pipeline-parallel degree (ignored otherwise). */
    int pipeline_parallel = 1;

    /**
     * MoE expert count (Moe only). 0 = one expert per GPU, resolved
     * at plan time against the cluster size.
     */
    int experts = 0;

    /** Model-parallel group size (Megatron/hybrid), else 1. */
    int modelParallelSize() const;

    /** True for the hybrid ZeRO-1/2 + tensor-parallel mode. */
    bool isHybridZero() const;

    /** Data-parallel degree given @p total_gpus. */
    int dataParallelSize(int total_gpus) const;

    /** A short display name matching the paper's figure labels. */
    std::string displayName() const;

    // --- canned configurations used throughout the benches ------------

    static StrategyConfig ddp();
    /** Megatron with the given TP and PP degrees. */
    static StrategyConfig megatron(int tp, int pp);
    static StrategyConfig zero(int stage);
    /** Hybrid: ZeRO stage 1/2 across replicas, TP inside them. */
    static StrategyConfig hybridZero(int stage, int tp);
    /** ZeRO stage 1/2/3 with CPU optimizer offload. */
    static StrategyConfig zeroOffloadCpu(int stage);
    /** ZeRO-3 with NVMe offload (optionally parameters too). */
    static StrategyConfig zeroInfinityNvme(bool params_too);
    /** PyTorch FSDP: per-block flat-param shards, bounded prefetch. */
    static StrategyConfig fsdp();
    /** MoE expert parallelism; 0 experts = one per GPU. */
    static StrategyConfig moe(int experts = 0);
    /** 3D hybrid: TP x PP model parallelism, ZeRO-sharded DP. */
    static StrategyConfig hybrid3d(int tp, int pp);
};

/** Name of a StrategyKind ("DDP", "Megatron-LM", "ZeRO-1", ...). */
const char *strategyKindName(StrategyKind kind);

/**
 * fatal() if the configuration is not expressible in the real
 * libraries (paper Table I): only DeepSpeed ZeRO offloads; NVMe
 * offload requires stage 3; parameter offload requires an offload
 * target.
 */
void validateStrategy(const StrategyConfig &cfg);

} // namespace dstrain

#endif // DSTRAIN_MODEL_PARALLELISM_HH
