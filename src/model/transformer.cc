/**
 * @file
 * Implementation of the transformer configuration.
 */

#include "model/transformer.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace dstrain {

TransformerConfig
TransformerConfig::gpt2Like(int layers)
{
    DSTRAIN_ASSERT(layers >= 1, "need at least one layer (got %d)",
                   layers);
    TransformerConfig cfg;
    cfg.layers = layers;
    return cfg;
}

std::int64_t
TransformerConfig::layerParameterCount() const
{
    const std::int64_t h = hidden;
    // Attention: QKV (3 h^2 + 3 h) + output projection (h^2 + h).
    // MLP: up (4 h^2 + 4 h) + down (4 h^2 + h).
    // Two LayerNorms: 4 h.
    return 12 * h * h + 13 * h;
}

std::int64_t
TransformerConfig::embeddingParameterCount() const
{
    const std::int64_t h = hidden;
    return static_cast<std::int64_t>(vocab) * h +
           static_cast<std::int64_t>(max_pos) * h + 2 * h;
}

std::int64_t
TransformerConfig::parameterCount() const
{
    return embeddingParameterCount() +
           static_cast<std::int64_t>(layers) * layerParameterCount();
}

int
layersForParameterTarget(std::int64_t target_params)
{
    TransformerConfig base = TransformerConfig::gpt2Like(1);
    const std::int64_t fixed = base.embeddingParameterCount();
    const std::int64_t per_layer = base.layerParameterCount();
    DSTRAIN_ASSERT(target_params > fixed,
                   "target of %lld params is below the embedding size",
                   static_cast<long long>(target_params));
    const double layers =
        static_cast<double>(target_params - fixed) /
        static_cast<double>(per_layer);
    return std::max(1, static_cast<int>(std::llround(layers)));
}

} // namespace dstrain
