/**
 * @file
 * The paper's model-size ladder: the discrete set of GPT-2-like
 * model sizes (in billions of parameters) that appear across Fig. 6,
 * Fig. 13, Table V and Sec. V, realized as layer counts of the
 * gpt2Like() architecture. Capacity solving snaps to this ladder so
 * "achieved model size" is reported in the paper's own units.
 */

#ifndef DSTRAIN_MODEL_SIZE_LADDER_HH
#define DSTRAIN_MODEL_SIZE_LADDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/transformer.hh"

namespace dstrain {

/** One rung of the ladder. */
struct LadderEntry {
    double billions = 0.0;  ///< nominal size, e.g. 1.4
    int layers = 0;         ///< layer count realizing it
    std::int64_t params = 0;///< exact parameterCount() at that depth
};

/** The ladder, ascending. */
const std::vector<LadderEntry> &paperSizeLadder();

/** The ladder entry closest to @p billions; fatal() if none within 25%. */
const LadderEntry &ladderEntryFor(double billions);

/**
 * The largest ladder entry whose layer count is <= @p layers
 * (used by the capacity solver to snap a raw layer bound to the
 * paper's reporting grid). fatal() if even the smallest rung does
 * not fit.
 */
const LadderEntry &largestLadderEntryAtMost(int layers);

/** A transformer config for a ladder size. */
TransformerConfig configForBillions(double billions);

/** Short label such as "1.4B". */
std::string ladderLabel(const LadderEntry &entry);

} // namespace dstrain

#endif // DSTRAIN_MODEL_SIZE_LADDER_HH
