/**
 * @file
 * Memory accounting primitives for mixed-precision (fp16) training
 * with Adam — the "model states" of the ZeRO papers:
 *
 *   fp16 parameters   2 bytes/param
 *   fp16 gradients    2 bytes/param
 *   optimizer states 12 bytes/param (fp32 master copy + momentum +
 *                                    variance)
 *
 * plus activation memory, which with activation checkpointing is the
 * per-layer boundary activations and a transient working set.
 */

#ifndef DSTRAIN_MODEL_MEMORY_HH
#define DSTRAIN_MODEL_MEMORY_HH

#include <cstdint>

#include "model/transformer.hh"
#include "util/units.hh"

namespace dstrain {

/** Byte sizes of the three model-state components. */
struct ModelStateBytes {
    Bytes fp16_params = 0.0;
    Bytes fp16_grads = 0.0;
    Bytes fp32_optimizer = 0.0;

    /** Sum of the three components (the famous 16 bytes/param). */
    Bytes total() const
    {
        return fp16_params + fp16_grads + fp32_optimizer;
    }
};

/** Model states for @p params parameters (unpartitioned). */
ModelStateBytes modelStateBytes(std::int64_t params);

/**
 * Checkpointed activation memory per transformer layer per sample:
 * the stored layer-boundary activation (s x h, fp16) scaled by a
 * calibration multiplier covering the transient working set
 * (attention scores, dropout masks, recompute buffers).
 */
Bytes activationBytesPerLayer(const TransformerConfig &cfg,
                              int batch_per_gpu,
                              double workspace_multiplier);

/** Default activation workspace multiplier (see memplan/footprint). */
inline constexpr double kDefaultActWorkspace = 4.0;

} // namespace dstrain

#endif // DSTRAIN_MODEL_MEMORY_HH
