/**
 * @file
 * Implementation of the strategy configuration helpers.
 */

#include "model/parallelism.hh"

#include "util/logging.hh"

namespace dstrain {

const char *
strategyKindName(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::Ddp:
        return "DDP";
      case StrategyKind::Megatron:
        return "Megatron-LM";
      case StrategyKind::Zero1:
        return "ZeRO-1";
      case StrategyKind::Zero2:
        return "ZeRO-2";
      case StrategyKind::Zero3:
        return "ZeRO-3";
      case StrategyKind::Fsdp:
        return "FSDP";
      case StrategyKind::Moe:
        return "MoE";
      case StrategyKind::Hybrid3d:
        return "3D-Hybrid";
    }
    panic("unknown StrategyKind %d", static_cast<int>(kind));
}

void
validateStrategy(const StrategyConfig &cfg)
{
    const bool is_zero = cfg.kind == StrategyKind::Zero1 ||
                         cfg.kind == StrategyKind::Zero2 ||
                         cfg.kind == StrategyKind::Zero3;
    if (!is_zero && cfg.offload != OffloadTarget::None)
        fatal("%s does not support offloading (paper Table I)",
              strategyKindName(cfg.kind));
    if (cfg.offload == OffloadTarget::Nvme &&
        cfg.kind != StrategyKind::Zero3) {
        fatal("NVMe offload requires ZeRO-3 (paper Table I)");
    }
    if (cfg.offload_params && cfg.offload == OffloadTarget::None)
        fatal("parameter offload requires an offload target");
    if (cfg.experts != 0 && cfg.kind != StrategyKind::Moe)
        fatal("expert count applies to the MoE strategy only");
    if (cfg.experts < 0)
        fatal("MoE expert count must be >= 0 (got %d)", cfg.experts);
    if (cfg.isHybridZero()) {
        if (cfg.pipeline_parallel != 1)
            fatal("hybrid ZeRO supports tensor parallelism only");
        if (cfg.offload != OffloadTarget::None)
            fatal("hybrid ZeRO does not support offloading");
        return;
    }
    if (cfg.kind == StrategyKind::Hybrid3d) {
        if (cfg.tensor_parallel < 1 || cfg.pipeline_parallel < 1)
            fatal("3D hybrid needs TP and PP degrees >= 1");
        return;
    }
    if (cfg.kind != StrategyKind::Megatron &&
        (cfg.tensor_parallel != 1 || cfg.pipeline_parallel != 1)) {
        fatal("TP/PP degrees apply to Megatron-LM, hybrid ZeRO-1/2 "
              "or the 3D hybrid");
    }
}

bool
StrategyConfig::isHybridZero() const
{
    return (kind == StrategyKind::Zero1 ||
            kind == StrategyKind::Zero2) &&
           tensor_parallel > 1;
}

int
StrategyConfig::modelParallelSize() const
{
    if (kind == StrategyKind::Megatron ||
        kind == StrategyKind::Hybrid3d) {
        return tensor_parallel * pipeline_parallel;
    }
    if (isHybridZero())
        return tensor_parallel;
    return 1;
}

int
StrategyConfig::dataParallelSize(int total_gpus) const
{
    const int mp = modelParallelSize();
    DSTRAIN_ASSERT(total_gpus >= mp && total_gpus % mp == 0,
                   "%d GPUs not divisible by model-parallel size %d",
                   total_gpus, mp);
    return total_gpus / mp;
}

std::string
StrategyConfig::displayName() const
{
    std::string name = strategyKindName(kind);
    if (kind == StrategyKind::Megatron ||
        kind == StrategyKind::Hybrid3d) {
        name += csprintf(" (TP=%d,PP=%d)", tensor_parallel,
                         pipeline_parallel);
    } else if (isHybridZero()) {
        name += csprintf(" +TP=%d", tensor_parallel);
    } else if (kind == StrategyKind::Moe && experts > 0) {
        name += csprintf(" (E=%d)", experts);
    }
    switch (offload) {
      case OffloadTarget::None:
        break;
      case OffloadTarget::Cpu:
        name += " (CPU)";
        break;
      case OffloadTarget::Nvme:
        name += offload_params ? " (NVME opt+param)" : " (NVME opt)";
        break;
    }
    return name;
}

StrategyConfig
StrategyConfig::ddp()
{
    return StrategyConfig{};
}

StrategyConfig
StrategyConfig::megatron(int tp, int pp)
{
    DSTRAIN_ASSERT(tp >= 1 && pp >= 1, "bad TP/PP degrees %d/%d", tp, pp);
    StrategyConfig c;
    c.kind = StrategyKind::Megatron;
    c.tensor_parallel = tp;
    c.pipeline_parallel = pp;
    return c;
}

StrategyConfig
StrategyConfig::zero(int stage)
{
    StrategyConfig c;
    switch (stage) {
      case 1:
        c.kind = StrategyKind::Zero1;
        break;
      case 2:
        c.kind = StrategyKind::Zero2;
        break;
      case 3:
        c.kind = StrategyKind::Zero3;
        break;
      default:
        fatal("ZeRO stage must be 1, 2 or 3 (got %d)", stage);
    }
    return c;
}

StrategyConfig
StrategyConfig::hybridZero(int stage, int tp)
{
    DSTRAIN_ASSERT(stage == 1 || stage == 2,
                   "hybrid ZeRO supports stages 1 and 2 (got %d)",
                   stage);
    StrategyConfig c = zero(stage);
    c.tensor_parallel = tp;
    return c;
}

StrategyConfig
StrategyConfig::zeroOffloadCpu(int stage)
{
    StrategyConfig c = zero(stage);
    c.offload = OffloadTarget::Cpu;
    return c;
}

StrategyConfig
StrategyConfig::zeroInfinityNvme(bool params_too)
{
    StrategyConfig c = zero(3);
    c.offload = OffloadTarget::Nvme;
    c.offload_params = params_too;
    return c;
}

StrategyConfig
StrategyConfig::fsdp()
{
    StrategyConfig c;
    c.kind = StrategyKind::Fsdp;
    return c;
}

StrategyConfig
StrategyConfig::moe(int experts)
{
    DSTRAIN_ASSERT(experts >= 0, "bad MoE expert count %d", experts);
    StrategyConfig c;
    c.kind = StrategyKind::Moe;
    c.experts = experts;
    return c;
}

StrategyConfig
StrategyConfig::hybrid3d(int tp, int pp)
{
    DSTRAIN_ASSERT(tp >= 1 && pp >= 1, "bad TP/PP degrees %d/%d", tp, pp);
    StrategyConfig c;
    c.kind = StrategyKind::Hybrid3d;
    c.tensor_parallel = tp;
    c.pipeline_parallel = pp;
    return c;
}

} // namespace dstrain
