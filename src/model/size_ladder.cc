/**
 * @file
 * Implementation of the model-size ladder.
 */

#include "model/size_ladder.hh"

#include <cmath>

#include "util/logging.hh"

namespace dstrain {

namespace {

/** The sizes quoted anywhere in the paper, in billions. */
constexpr double kPaperSizes[] = {
    0.7,  1.4,  2.9,  4.4,  5.2,  5.5,  6.0,  6.4,  6.6,
    7.8,  8.5,  8.9,  11.4, 13.5, 14.2, 20.6, 26.9, 33.3,
};

std::vector<LadderEntry>
buildLadder()
{
    std::vector<LadderEntry> ladder;
    for (double b : kPaperSizes) {
        LadderEntry e;
        e.billions = b;
        e.layers = layersForParameterTarget(
            static_cast<std::int64_t>(b * 1e9));
        e.params =
            TransformerConfig::gpt2Like(e.layers).parameterCount();
        ladder.push_back(e);
    }
    return ladder;
}

} // namespace

const std::vector<LadderEntry> &
paperSizeLadder()
{
    static const std::vector<LadderEntry> ladder = buildLadder();
    return ladder;
}

const LadderEntry &
ladderEntryFor(double billions)
{
    const auto &ladder = paperSizeLadder();
    const LadderEntry *best = nullptr;
    double best_err = 0.0;
    for (const LadderEntry &e : ladder) {
        const double err = std::abs(e.billions - billions);
        if (best == nullptr || err < best_err) {
            best = &e;
            best_err = err;
        }
    }
    DSTRAIN_ASSERT(best != nullptr, "empty ladder");
    if (best_err > 0.25 * billions) {
        fatal("no ladder entry near %.2f billion parameters", billions);
    }
    return *best;
}

const LadderEntry &
largestLadderEntryAtMost(int layers)
{
    const auto &ladder = paperSizeLadder();
    const LadderEntry *best = nullptr;
    for (const LadderEntry &e : ladder)
        if (e.layers <= layers)
            best = &e;
    if (best == nullptr) {
        fatal("no ladder model fits within %d layers "
              "(smallest rung needs %d)",
              layers, ladder.front().layers);
    }
    return *best;
}

TransformerConfig
configForBillions(double billions)
{
    return TransformerConfig::gpt2Like(ladderEntryFor(billions).layers);
}

std::string
ladderLabel(const LadderEntry &entry)
{
    return csprintf("%.1fB", entry.billions);
}

} // namespace dstrain
