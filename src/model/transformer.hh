/**
 * @file
 * The GPT-2-like transformer configuration of the paper's workload
 * (Sec. III-B2): 16 attention heads, hidden size 2048, sequence
 * length 256, 1024 maximum position embeddings; the layer count is
 * the knob that sets the model size.
 */

#ifndef DSTRAIN_MODEL_TRANSFORMER_HH
#define DSTRAIN_MODEL_TRANSFORMER_HH

#include <cstdint>

namespace dstrain {

/** Model architecture parameters. */
struct TransformerConfig {
    int layers = 24;
    int hidden = 2048;
    int heads = 16;
    int seq_len = 256;
    int max_pos = 1024;   ///< maximum position embeddings
    int vocab = 50257;    ///< GPT-2 BPE vocabulary

    /** The paper's GPT-2-like model with @p layers layers. */
    static TransformerConfig gpt2Like(int layers);

    /**
     * Total parameter count:
     * token embedding (vocab x hidden, tied with the LM head) +
     * position embedding + per-layer (12 h^2 + 13 h: QKV, attention
     * projection, 4x MLP up/down, biases, two LayerNorms) + final
     * LayerNorm.
     */
    std::int64_t parameterCount() const;

    /** Parameters of one transformer layer. */
    std::int64_t layerParameterCount() const;

    /** Embedding (plus final LayerNorm) parameters. */
    std::int64_t embeddingParameterCount() const;
};

/**
 * The number of layers whose gpt2Like() model has at least
 * @p target_params parameters (closest layer count).
 */
int layersForParameterTarget(std::int64_t target_params);

} // namespace dstrain

#endif // DSTRAIN_MODEL_TRANSFORMER_HH
