/**
 * @file
 * Implementation of the memory accounting primitives.
 */

#include "model/memory.hh"

#include "util/logging.hh"

namespace dstrain {

ModelStateBytes
modelStateBytes(std::int64_t params)
{
    DSTRAIN_ASSERT(params > 0, "non-positive parameter count");
    const double p = static_cast<double>(params);
    ModelStateBytes m;
    m.fp16_params = 2.0 * p;
    m.fp16_grads = 2.0 * p;
    m.fp32_optimizer = 12.0 * p;
    return m;
}

Bytes
activationBytesPerLayer(const TransformerConfig &cfg, int batch_per_gpu,
                        double workspace_multiplier)
{
    DSTRAIN_ASSERT(batch_per_gpu > 0, "non-positive batch size");
    DSTRAIN_ASSERT(workspace_multiplier > 0.0,
                   "non-positive workspace multiplier");
    const double boundary = 2.0 * static_cast<double>(batch_per_gpu) *
                            cfg.seq_len * cfg.hidden;  // fp16
    return boundary * workspace_multiplier;
}

} // namespace dstrain
