/**
 * @file
 * FLOP accounting for one training iteration, following the
 * convention of the DeepSpeed FLOPS profiler the paper uses for its
 * throughput numbers: achieved TFLOP/s = executed FLOPs / iteration
 * time, where executed FLOPs include the activation-recomputation
 * forward pass.
 */

#ifndef DSTRAIN_MODEL_FLOPS_HH
#define DSTRAIN_MODEL_FLOPS_HH

#include <cstdint>

#include "model/transformer.hh"
#include "util/units.hh"

namespace dstrain {

/**
 * Matmul FLOPs of one forward pass over @p tokens tokens:
 * per layer 2(12 h^2 + 2 s h) per token (QKV/proj/MLP plus the
 * attention score and context matmuls), plus the 2 h V logits.
 */
Flops forwardFlops(const TransformerConfig &cfg, std::int64_t tokens);

/**
 * Executed FLOPs of one iteration over @p tokens tokens.
 *
 * @param with_recompute include the extra forward pass of activation
 *        checkpointing (the paper's runs train with checkpointing
 *        enabled, so the profiler counts it).
 */
Flops iterationFlops(const TransformerConfig &cfg, std::int64_t tokens,
                     bool with_recompute = true);

/**
 * The paper's throughput metric: aggregate TFLOP/s over the cluster
 * for an iteration of @p tokens tokens finishing in @p iter_time.
 */
double achievedTflops(const TransformerConfig &cfg, std::int64_t tokens,
                      SimTime iter_time, bool with_recompute = true);

} // namespace dstrain

#endif // DSTRAIN_MODEL_FLOPS_HH
