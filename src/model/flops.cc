/**
 * @file
 * Implementation of the FLOP accounting.
 */

#include "model/flops.hh"

#include "util/logging.hh"

namespace dstrain {

Flops
forwardFlops(const TransformerConfig &cfg, std::int64_t tokens)
{
    DSTRAIN_ASSERT(tokens > 0, "iteration needs positive token count");
    const double h = cfg.hidden;
    const double s = cfg.seq_len;
    const double per_token_layer = 2.0 * (12.0 * h * h + 2.0 * s * h);
    const double logits = 2.0 * h * static_cast<double>(cfg.vocab);
    return static_cast<double>(tokens) *
           (cfg.layers * per_token_layer + logits);
}

Flops
iterationFlops(const TransformerConfig &cfg, std::int64_t tokens,
               bool with_recompute)
{
    const Flops fwd = forwardFlops(cfg, tokens);
    // Backward is 2x forward; checkpointing re-executes the forward.
    return fwd * (with_recompute ? 4.0 : 3.0);
}

double
achievedTflops(const TransformerConfig &cfg, std::int64_t tokens,
               SimTime iter_time, bool with_recompute)
{
    DSTRAIN_ASSERT(iter_time > 0.0, "non-positive iteration time");
    return iterationFlops(cfg, tokens, with_recompute) / iter_time /
           units::TFLOPS;
}

} // namespace dstrain
