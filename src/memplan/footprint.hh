/**
 * @file
 * Per-strategy memory footprints.
 *
 * The planner answers: for a given strategy, cluster shape and model
 * depth, how many bytes land on each GPU, on each node's CPU memory,
 * and on NVMe? The formulas start from the ZeRO papers' model-state
 * arithmetic (2 + 2 + 12 bytes per parameter, partitioned per stage)
 * and add *calibrated* framework overheads (gradient buckets,
 * all-gather prefetch buffers, offload double-buffers, TP-replicated
 * activations and pipeline buffers for Megatron-LM). The calibration
 * constants are chosen once, in MemoryCalibration, so that the
 * capacity solver lands on the paper's achieved model sizes (Fig. 6,
 * Fig. 13) on the published 40 GB A100 nodes; every constant is
 * documented with the paper observation it is fitted to.
 */

#ifndef DSTRAIN_MEMPLAN_FOOTPRINT_HH
#define DSTRAIN_MEMPLAN_FOOTPRINT_HH

#include "hw/cluster.hh"
#include "model/memory.hh"
#include "model/parallelism.hh"
#include "model/transformer.hh"
#include "util/units.hh"

namespace dstrain {

/**
 * Calibration constants of the memory model. Defaults reproduce the
 * paper's achieved-model-size ladder; see each member's comment for
 * the observation it is fitted against.
 */
struct MemoryCalibration {
    /** CUDA context + cuBLAS/NCCL workspace per GPU. */
    Bytes cuda_context = 1.29 * units::GB;

    /**
     * Allocator reserve/fragmentation slack per GPU. Together with
     * cuda_context this leaves 39.7 GB of the A100's 40 GiB usable,
     * consistent with the paper's 154-157 GB per-node GPU usage at
     * the largest model sizes (Sec. IV-D).
     */
    Bytes allocator_reserve = 1.96 * units::GB;

    /**
     * Activation workspace multiplier over the stored layer-boundary
     * activation (checkpointing enabled): boundary + one transient
     * copy.
     */
    double act_workspace = 2.0;

    /**
     * Megatron-LM per-layer activation bytes per GPU, as a multiple
     * of the boundary activation: 34 / mp. Covers TP-replicated
     * activations (LayerNorm inputs, dropout masks) and pipeline
     * micro-batch buffers. Fitted to Megatron's 5.5 B single-node /
     * 11.4 B dual-node achieved sizes (Fig. 6).
     */
    double megatron_act_numerator = 34.0;

    /**
     * DDP gradient-bucket copy: PyTorch DDP keeps flattened bucket
     * views alongside the per-tensor gradients (~2 bytes/param).
     */
    double ddp_bucket_bytes_per_param = 2.0;

    /**
     * ZeRO-1 all-gather/bucket slack in bytes/param (fp16 param
     * gather buffers). Small; ZeRO-1's size is dominated by
     * unpartitioned params+grads.
     */
    double zero1_extra_bytes_per_param = 0.0;

    /**
     * ZeRO-2 reduce-bucket overhead in bytes/param, shrinking with
     * the square of the DP degree (buckets shrink with the partition
     * and overlap depth). Fitted to ZeRO-2's 5.2 B single / 8.5 B
     * dual achieved sizes (Fig. 6).
     */
    double zero2_extra_numerator = 19.0;  ///< bytes/param = 19 / N^2

    /**
     * ZeRO-3 prefetch/live-parameter buffers in bytes/param,
     * proportional to the partition size. Fitted to ZeRO-3's 6.6 B
     * single / 13.5 B dual sizes (Fig. 6).
     */
    double zero3_extra_numerator = 2.0;   ///< bytes/param = 2 / N

    /**
     * GPU-resident bytes/param with CPU optimizer offload. ZeRO-1
     * keeps fp16 params + most fp16 grads on GPU (3.7); ZeRO-2
     * streams gradient buckets out as they reduce (2.1). Fitted to
     * the 8.9 B / 14.2 B largest-model results of Fig. 13.
     */
    double zero1_cpu_gpu_bytes_per_param = 3.7;
    double zero2_cpu_gpu_bytes_per_param = 2.1;
    double zero3_cpu_gpu_bytes_per_param = 2.78;

    /**
     * GPU-resident bytes/param with NVMe offload (ZeRO-Infinity):
     * partitioned fp16 params + all-gather working set (optimizer
     * offloaded), or just the working set (params offloaded too).
     * Fitted to the Fig. 11-b GPU compositions (108 GB / 52 GB at
     * 11.4 B).
     */
    double zero3_nvme_gpu_bytes_per_param = 1.7;
    double zero3_nvme_param_gpu_bytes_per_param = 0.5;

    /** Host-side framework footprint per local rank (Sec. IV-D). */
    Bytes cpu_base_per_rank = 5.5 * units::GB;

    /**
     * Node CPU bytes/param for the offload families, fitted to the
     * Fig. 11-b / Fig. 13-c compositions: ZeRO-Offload pins the
     * optimizer partition plus double buffers for overlap.
     */
    double zero1_cpu_cpu_bytes_per_param = 33.0;
    double zero2_cpu_cpu_bytes_per_param = 31.0;
    double zero3_cpu_cpu_bytes_per_param = 25.9;

    /**
     * ZeRO-Infinity host staging: a large configuration-sized pinned
     * buffer pool plus a per-parameter part (affine fit to the
     * 488 GB @ 11.4 B and 611 GB @ 33.3 B CPU compositions).
     */
    Bytes zero3_nvme_cpu_base = 0.0;
    double zero3_nvme_cpu_bytes_per_param = 27.8;
    Bytes zero3_nvme_param_cpu_base = 424.0 * units::GB;
    double zero3_nvme_param_cpu_bytes_per_param = 5.6;

    /** NVMe bytes/param: the fp32 optimizer partition (+ params). */
    double zero3_nvme_nvme_bytes_per_param = 11.3;
    Bytes zero3_nvme_param_nvme_base = 32.9 * units::GB;
    double zero3_nvme_param_nvme_bytes_per_param = 10.3;

    /** Usable per-GPU byte budget given @p gpu_memory. */
    Bytes gpuBudget(Bytes gpu_memory) const
    {
        return gpu_memory - cuda_context - allocator_reserve;
    }
};

/** Where the bytes of one training setup live. */
struct MemoryFootprint {
    Bytes gpu_per_gpu = 0.0;    ///< bytes on each GPU
    Bytes cpu_per_node = 0.0;   ///< host memory per node
    Bytes nvme_per_node = 0.0;  ///< NVMe usage per node

    /** Aggregates over the cluster. */
    Bytes gpuTotal(int total_gpus) const
    {
        return gpu_per_gpu * total_gpus;
    }
    Bytes cpuTotal(int nodes) const { return cpu_per_node * nodes; }
    Bytes nvmeTotal(int nodes) const { return nvme_per_node * nodes; }
    Bytes grandTotal(int total_gpus, int nodes) const
    {
        return gpuTotal(total_gpus) + cpuTotal(nodes) +
               nvmeTotal(nodes);
    }
};

/**
 * Compute the footprint of training @p cfg with @p strategy on a
 * cluster of @p total_gpus GPUs over @p nodes nodes at
 * @p batch_per_gpu.
 */
MemoryFootprint
computeFootprint(const TransformerConfig &cfg,
                 const StrategyConfig &strategy, int total_gpus,
                 int nodes, int batch_per_gpu,
                 const MemoryCalibration &cal = {});

/**
 * As above, but shaped by @p cluster: heterogeneous groups are
 * allowed, and the per-node CPU footprint is sized for the node with
 * the most GPUs (the conservative bound the capacity solver checks
 * against every node's budget). On a homogeneous cluster this is
 * exactly the int-shaped overload.
 */
MemoryFootprint
computeFootprint(const TransformerConfig &cfg,
                 const StrategyConfig &strategy,
                 const ClusterSpec &cluster, int batch_per_gpu,
                 const MemoryCalibration &cal = {});

} // namespace dstrain

#endif // DSTRAIN_MEMPLAN_FOOTPRINT_HH
