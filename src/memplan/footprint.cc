/**
 * @file
 * Implementation of the per-strategy memory footprints.
 */

#include "memplan/footprint.hh"

#include "util/logging.hh"

namespace dstrain {

namespace {

/** Activation bytes per GPU for the non-Megatron strategies. */
Bytes
dataParallelActivations(const TransformerConfig &cfg, int batch_per_gpu,
                        const MemoryCalibration &cal)
{
    return static_cast<double>(cfg.layers) *
           activationBytesPerLayer(cfg, batch_per_gpu, cal.act_workspace);
}

/** Activation bytes per GPU for Megatron-LM (see MemoryCalibration). */
Bytes
megatronActivations(const TransformerConfig &cfg, int batch_per_gpu,
                    int mp, const MemoryCalibration &cal)
{
    const double mult = cal.megatron_act_numerator / mp;
    return static_cast<double>(cfg.layers) *
           activationBytesPerLayer(cfg, batch_per_gpu, mult);
}

/** The shared core; @p gpus_per_node sizes the per-node CPU share. */
MemoryFootprint
computeFootprintShaped(const TransformerConfig &cfg,
                       const StrategyConfig &strategy, int total_gpus,
                       int nodes, int gpus_per_node, int batch_per_gpu,
                       const MemoryCalibration &cal)
{
    DSTRAIN_ASSERT(total_gpus >= 1 && nodes >= 1 && gpus_per_node >= 1,
                   "bad cluster shape: %d GPUs on %d nodes", total_gpus,
                   nodes);
    const double p = static_cast<double>(cfg.parameterCount());
    const int n = total_gpus;
    const ModelStateBytes states = modelStateBytes(cfg.parameterCount());

    MemoryFootprint fp;
    fp.cpu_per_node = cal.cpu_base_per_rank * gpus_per_node;

    switch (strategy.kind) {
      case StrategyKind::Ddp: {
        fp.gpu_per_gpu = states.total() +
                         cal.ddp_bucket_bytes_per_param * p +
                         dataParallelActivations(cfg, batch_per_gpu, cal);
        break;
      }
      case StrategyKind::Megatron: {
        const int mp = strategy.modelParallelSize();
        DSTRAIN_ASSERT(n % mp == 0,
                       "model-parallel size %d does not divide %d GPUs",
                       mp, n);
        fp.gpu_per_gpu = states.total() / mp +
                         megatronActivations(cfg, batch_per_gpu, mp, cal);
        break;
      }
      case StrategyKind::Zero1: {
        if (strategy.isHybridZero()) {
            const int tp = strategy.tensor_parallel;
            const int dp = strategy.dataParallelSize(n);
            fp.gpu_per_gpu =
                (states.fp16_params + states.fp16_grads +
                 states.fp32_optimizer / dp) /
                    tp +
                megatronActivations(cfg, batch_per_gpu, tp, cal);
            break;
        }
        if (strategy.offload == OffloadTarget::Cpu) {
            fp.gpu_per_gpu =
                cal.zero1_cpu_gpu_bytes_per_param * p +
                dataParallelActivations(cfg, batch_per_gpu, cal);
            fp.cpu_per_node +=
                cal.zero1_cpu_cpu_bytes_per_param * p / nodes;
        } else {
            fp.gpu_per_gpu =
                states.fp16_params + states.fp16_grads +
                states.fp32_optimizer / n +
                cal.zero1_extra_bytes_per_param * p +
                dataParallelActivations(cfg, batch_per_gpu, cal);
        }
        break;
      }
      case StrategyKind::Zero2: {
        if (strategy.isHybridZero()) {
            const int tp = strategy.tensor_parallel;
            const int dp = strategy.dataParallelSize(n);
            fp.gpu_per_gpu =
                (states.fp16_params +
                 (states.fp16_grads + states.fp32_optimizer) / dp) /
                    tp +
                megatronActivations(cfg, batch_per_gpu, tp, cal);
            break;
        }
        if (strategy.offload == OffloadTarget::Cpu) {
            fp.gpu_per_gpu =
                cal.zero2_cpu_gpu_bytes_per_param * p +
                dataParallelActivations(cfg, batch_per_gpu, cal);
            fp.cpu_per_node +=
                cal.zero2_cpu_cpu_bytes_per_param * p / nodes;
        } else {
            fp.gpu_per_gpu =
                states.fp16_params +
                (states.fp16_grads + states.fp32_optimizer) / n +
                cal.zero2_extra_numerator / (n * n) * p +
                dataParallelActivations(cfg, batch_per_gpu, cal);
        }
        break;
      }
      case StrategyKind::Zero3: {
        const Bytes act =
            dataParallelActivations(cfg, batch_per_gpu, cal);
        switch (strategy.offload) {
          case OffloadTarget::None:
            fp.gpu_per_gpu = states.total() / n +
                             cal.zero3_extra_numerator / n * p + act;
            break;
          case OffloadTarget::Cpu:
            fp.gpu_per_gpu =
                cal.zero3_cpu_gpu_bytes_per_param * p + act;
            fp.cpu_per_node +=
                cal.zero3_cpu_cpu_bytes_per_param * p / nodes;
            break;
          case OffloadTarget::Nvme:
            if (strategy.offload_params) {
                fp.gpu_per_gpu =
                    cal.zero3_nvme_param_gpu_bytes_per_param * p + act;
                fp.cpu_per_node +=
                    (cal.zero3_nvme_param_cpu_base +
                     cal.zero3_nvme_param_cpu_bytes_per_param * p) /
                    nodes;
                fp.nvme_per_node =
                    (cal.zero3_nvme_param_nvme_base +
                     cal.zero3_nvme_param_nvme_bytes_per_param * p) /
                    nodes;
            } else {
                fp.gpu_per_gpu =
                    cal.zero3_nvme_gpu_bytes_per_param * p + act;
                fp.cpu_per_node +=
                    cal.zero3_nvme_cpu_base / nodes +
                    cal.zero3_nvme_cpu_bytes_per_param * p / nodes;
                fp.nvme_per_node =
                    cal.zero3_nvme_nvme_bytes_per_param * p / nodes;
            }
            break;
        }
        break;
      }
      case StrategyKind::Fsdp: {
        // Flat-param shards: all states 1/N like ZeRO-3, but no
        // DeepSpeed prefetch-coordination buffers.
        fp.gpu_per_gpu = states.total() / n +
                         dataParallelActivations(cfg, batch_per_gpu, cal);
        break;
      }
      case StrategyKind::Moe: {
        // Shared third replicated; expert two-thirds partitioned over
        // the expert-parallel group (== world for experts=0).
        const int ep = strategy.experts > 0
                           ? std::min(strategy.experts, n)
                           : n;
        const double f = 1.0 / 3.0;
        fp.gpu_per_gpu = f * states.total() +
                         (1.0 - f) * states.total() / ep +
                         dataParallelActivations(cfg, batch_per_gpu, cal);
        break;
      }
      case StrategyKind::Hybrid3d: {
        const int mp = strategy.modelParallelSize();
        DSTRAIN_ASSERT(n % mp == 0,
                       "model-parallel size %d does not divide %d GPUs",
                       mp, n);
        // fp16 states shard over the model-parallel grid; optimizer
        // states additionally ZeRO-shard over the DP axis.
        fp.gpu_per_gpu =
            (states.fp16_params + states.fp16_grads) / mp +
            states.fp32_optimizer / n +
            megatronActivations(cfg, batch_per_gpu, mp, cal);
        break;
      }
    }

    DSTRAIN_ASSERT(fp.gpu_per_gpu > 0.0, "footprint came out empty");
    return fp;
}

} // namespace

MemoryFootprint
computeFootprint(const TransformerConfig &cfg,
                 const StrategyConfig &strategy, int total_gpus,
                 int nodes, int batch_per_gpu,
                 const MemoryCalibration &cal)
{
    DSTRAIN_ASSERT(total_gpus >= 1 && nodes >= 1 &&
                       total_gpus % nodes == 0,
                   "bad cluster shape: %d GPUs on %d nodes", total_gpus,
                   nodes);
    return computeFootprintShaped(cfg, strategy, total_gpus, nodes,
                                  total_gpus / nodes, batch_per_gpu,
                                  cal);
}

MemoryFootprint
computeFootprint(const TransformerConfig &cfg,
                 const StrategyConfig &strategy,
                 const ClusterSpec &cluster, int batch_per_gpu,
                 const MemoryCalibration &cal)
{
    int widest = 0;
    for (int node = 0; node < cluster.nodeCount(); ++node)
        widest = std::max(widest, cluster.nodeSpecOf(node).gpus);
    return computeFootprintShaped(cfg, strategy, cluster.totalGpus(),
                                  cluster.nodeCount(), widest,
                                  batch_per_gpu, cal);
}

} // namespace dstrain
