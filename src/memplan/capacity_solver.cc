/**
 * @file
 * Implementation of the capacity solver.
 */

#include "memplan/capacity_solver.hh"

#include "util/logging.hh"

namespace dstrain {

bool
fitsCluster(const TransformerConfig &cfg, const StrategyConfig &strategy,
            const ClusterSpec &cluster, int batch_per_gpu,
            const MemoryCalibration &cal)
{
    validateStrategy(strategy);
    const MemoryFootprint fp =
        computeFootprint(cfg, strategy, cluster, batch_per_gpu, cal);

    // Heterogeneous clusters are judged by their weakest node: the
    // per-node footprint is uniform across ranks, so the smallest
    // budget binds (conservative for nodes with more headroom).
    for (int n = 0; n < cluster.nodeCount(); ++n) {
        const NodeSpec &node = cluster.nodeSpecOf(n);
        if (fp.gpu_per_gpu > cal.gpuBudget(node.gpu_memory))
            return false;
        if (fp.cpu_per_node > node.cpu_memory)
            return false;
        if (fp.nvme_per_node > 0.0) {
            Bytes scratch = 0.0;
            for (const NvmeDriveSpec &d : node.nvme_drives)
                scratch += d.capacity;
            if (fp.nvme_per_node > scratch)
                return false;
        }
    }
    return true;
}

CapacityResult
solveMaxModel(const StrategyConfig &strategy, const ClusterSpec &cluster,
              int batch_per_gpu, const MemoryCalibration &cal)
{
    // Binary search the raw layer bound, then snap to the paper's
    // reporting ladder. The footprint is monotone in the layer count
    // (every term grows with params or layers), so bisection is
    // sound; the property tests assert the monotonicity.
    int lo = 1;
    int hi = 1;
    const auto fits = [&](int layers) {
        return fitsCluster(TransformerConfig::gpt2Like(layers), strategy,
                           cluster, batch_per_gpu, cal);
    };
    if (!fits(lo)) {
        fatal("%s cannot fit even a 1-layer model on this cluster",
              strategy.displayName().c_str());
    }
    while (fits(hi * 2)) {
        hi *= 2;
        DSTRAIN_ASSERT(hi < (1 << 20), "capacity solve diverged");
    }
    hi *= 2;  // known infeasible
    while (hi - lo > 1) {
        const int mid = lo + (hi - lo) / 2;
        if (fits(mid))
            lo = mid;
        else
            hi = mid;
    }

    CapacityResult result;
    result.max_layers = lo;
    result.entry = largestLadderEntryAtMost(lo);
    result.footprint = computeFootprint(
        TransformerConfig::gpt2Like(result.entry.layers), strategy,
        cluster, batch_per_gpu, cal);
    return result;
}

} // namespace dstrain
