/**
 * @file
 * The capacity solver: the dstrain equivalent of the paper's
 * "achieved model size" methodology (Sec. III-B2) — grow the layer
 * count until the configuration no longer fits, then report the
 * largest size that trains.
 */

#ifndef DSTRAIN_MEMPLAN_CAPACITY_SOLVER_HH
#define DSTRAIN_MEMPLAN_CAPACITY_SOLVER_HH

#include "hw/cluster.hh"
#include "memplan/footprint.hh"
#include "model/size_ladder.hh"

namespace dstrain {

/** The result of a capacity solve. */
struct CapacityResult {
    LadderEntry entry;         ///< largest ladder model that fits
    MemoryFootprint footprint; ///< its footprint
    int max_layers = 0;        ///< raw layer bound before snapping
};

/**
 * Does the configuration fit the cluster's memory budget?
 *
 * Checks the per-GPU budget, the per-node host memory and (when NVMe
 * offload is active) the node's scratch NVMe capacity.
 */
bool fitsCluster(const TransformerConfig &cfg,
                 const StrategyConfig &strategy,
                 const ClusterSpec &cluster, int batch_per_gpu,
                 const MemoryCalibration &cal = {});

/**
 * The largest paper-ladder model that fits (paper Fig. 6 / Fig. 13).
 * fatal() if even the smallest ladder rung does not fit.
 */
CapacityResult solveMaxModel(const StrategyConfig &strategy,
                             const ClusterSpec &cluster,
                             int batch_per_gpu,
                             const MemoryCalibration &cal = {});

} // namespace dstrain

#endif // DSTRAIN_MEMPLAN_CAPACITY_SOLVER_HH
