/**
 * @file
 * Memory-composition reports: the GPU / CPU / NVMe breakdowns of
 * paper Fig. 11-b and Fig. 13-c, in per-node aggregate gigabytes as
 * the paper plots them.
 */

#ifndef DSTRAIN_MEMPLAN_COMPOSITION_HH
#define DSTRAIN_MEMPLAN_COMPOSITION_HH

#include <string>

#include "memplan/footprint.hh"

namespace dstrain {

/** One bar of the composition figures. */
struct MemoryComposition {
    std::string label;    ///< configuration name
    Bytes gpu = 0.0;      ///< aggregate GPU bytes (whole cluster)
    Bytes cpu = 0.0;      ///< aggregate host bytes
    Bytes nvme = 0.0;     ///< aggregate NVMe bytes

    Bytes total() const { return gpu + cpu + nvme; }

    /** Percentage helpers used by the figure output. */
    double gpuShare() const { return total() > 0 ? gpu / total() : 0; }
    double cpuShare() const { return total() > 0 ? cpu / total() : 0; }
    double nvmeShare() const
    {
        return total() > 0 ? nvme / total() : 0;
    }
};

/**
 * Aggregate a footprint over the cluster into a composition bar.
 */
MemoryComposition
composeMemory(const std::string &label, const MemoryFootprint &fp,
              int total_gpus, int nodes);

/** Render "X GB (Y%)" for one component. */
std::string compositionCell(Bytes bytes, double share);

} // namespace dstrain

#endif // DSTRAIN_MEMPLAN_COMPOSITION_HH
