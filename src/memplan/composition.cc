/**
 * @file
 * Implementation of the memory-composition reports.
 */

#include "memplan/composition.hh"

#include "util/logging.hh"

namespace dstrain {

MemoryComposition
composeMemory(const std::string &label, const MemoryFootprint &fp,
              int total_gpus, int nodes)
{
    MemoryComposition mc;
    mc.label = label;
    mc.gpu = fp.gpuTotal(total_gpus);
    mc.cpu = fp.cpuTotal(nodes);
    mc.nvme = fp.nvmeTotal(nodes);
    return mc;
}

std::string
compositionCell(Bytes bytes, double share)
{
    return csprintf("%.0f GB (%.1f%%)", bytes / units::GB,
                    share * 100.0);
}

} // namespace dstrain
