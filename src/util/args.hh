/**
 * @file
 * A small dependency-free command-line argument parser for the
 * dstrain CLI and the bench binaries.
 *
 * Supported syntax: `--flag`, `--key value`, `--key=value`, and bare
 * positional arguments. Unknown options are an error (catching typos
 * early); every option is declared with a help string so `--help`
 * output stays in sync with the code.
 */

#ifndef DSTRAIN_UTIL_ARGS_HH
#define DSTRAIN_UTIL_ARGS_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dstrain {

/**
 * Declarative argument parser.
 *
 * @code
 *   ArgParser args("dstrain", "simulate distributed LLM training");
 *   args.addOption("nodes", "1", "number of compute nodes");
 *   args.addFlag("csv", "emit CSV instead of tables");
 *   if (!args.parse(argc, argv)) return 1;   // help or error printed
 *   int nodes = args.getInt("nodes");
 * @endcode
 */
class ArgParser
{
  public:
    /** @param program binary name; @param summary one-line help. */
    ArgParser(std::string program, std::string summary);

    /** Declare a value option with a default and help text. */
    void addOption(const std::string &name,
                   const std::string &default_value,
                   const std::string &help);

    /** Declare a boolean flag (default false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv.
     * @return false when parsing failed or --help was requested (a
     *         message has been printed either way).
     */
    bool parse(int argc, const char *const *argv);

    /** The value of a declared option (default if not given). */
    const std::string &get(const std::string &name) const;

    /** get() converted to int; fatal() on malformed input. */
    int getInt(const std::string &name) const;

    /** get() converted to double; fatal() on malformed input. */
    double getDouble(const std::string &name) const;

    /** Was a declared flag present? */
    bool getFlag(const std::string &name) const;

    /** Was the option explicitly provided on the command line? */
    bool provided(const std::string &name) const;

    /** Bare (non-option) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** The rendered --help text. */
    std::string helpText() const;

  private:
    struct Option {
        std::string default_value;
        std::string help;
        bool is_flag = false;
    };

    std::string program_;
    std::string summary_;
    std::map<std::string, Option> options_;
    std::vector<std::string> declaration_order_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace dstrain

#endif // DSTRAIN_UTIL_ARGS_HH
