/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * dstrain runs must be reproducible: the same configuration must
 * produce bit-identical results. All stochastic elements (telemetry
 * jitter, synthetic traffic arrival noise) therefore draw from an
 * explicitly seeded SplitMix64 generator rather than
 * std::random_device.
 */

#ifndef DSTRAIN_UTIL_RNG_HH
#define DSTRAIN_UTIL_RNG_HH

#include <cstdint>

namespace dstrain {

/**
 * A small, fast, deterministic PRNG (SplitMix64).
 *
 * SplitMix64 passes BigCrush for the uses here (jitter and sampling)
 * and is trivially seedable, which keeps experiment reproduction
 * exact across platforms.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default is arbitrary fixed). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @p n must be positive. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

  private:
    std::uint64_t state_;
};

} // namespace dstrain

#endif // DSTRAIN_UTIL_RNG_HH
