/**
 * @file
 * ConfigError: the vocabulary type every validate() in the public API
 * returns. A validation pass collects all problems instead of
 * panicking on the first one, so CLI users see every bad flag at
 * once and library users can decide how to react.
 */

#ifndef DSTRAIN_UTIL_CONFIG_ERROR_HH
#define DSTRAIN_UTIL_CONFIG_ERROR_HH

#include <string>
#include <vector>

namespace dstrain {

/** One configuration problem, attributed to the offending field. */
struct ConfigError {
    std::string field;    ///< dotted path, e.g. "telemetry.bucket"
    std::string message;  ///< human-readable description
};

/** Render "field: message" lines joined by newlines. */
inline std::string
formatConfigErrors(const std::vector<ConfigError> &errors)
{
    std::string out;
    for (const ConfigError &e : errors) {
        if (!out.empty())
            out += '\n';
        out += e.field + ": " + e.message;
    }
    return out;
}

} // namespace dstrain

#endif // DSTRAIN_UTIL_CONFIG_ERROR_HH
