/**
 * @file
 * String utilities: splitting, joining, padding, case-insensitive
 * comparison. Nothing here is dstrain-specific; it exists to avoid
 * pulling heavier dependencies for table/CSV output.
 */

#ifndef DSTRAIN_UTIL_STRINGS_HH
#define DSTRAIN_UTIL_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace dstrain {

/** Split @p text on @p sep; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char sep);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Pad or truncate @p text on the right to exactly @p width chars. */
std::string padRight(std::string_view text, std::size_t width);

/** Pad or truncate @p text on the left to exactly @p width chars. */
std::string padLeft(std::string_view text, std::size_t width);

/** Trim ASCII whitespace from both ends. */
std::string trim(std::string_view text);

/** True when @p text starts with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

} // namespace dstrain

#endif // DSTRAIN_UTIL_STRINGS_HH
