/**
 * @file
 * Implementation of the string utilities.
 */

#include "util/strings.hh"

#include <algorithm>
#include <cctype>

namespace dstrain {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
padRight(std::string_view text, std::size_t width)
{
    std::string out(text.substr(0, width));
    out.resize(width, ' ');
    return out;
}

std::string
padLeft(std::string_view text, std::size_t width)
{
    if (text.size() >= width)
        return std::string(text.substr(0, width));
    std::string out(width - text.size(), ' ');
    out += text;
    return out;
}

std::string
trim(std::string_view text)
{
    const auto is_space = [](unsigned char c) { return std::isspace(c); };
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && is_space(text[begin]))
        ++begin;
    while (end > begin && is_space(text[end - 1]))
        --end;
    return std::string(text.substr(begin, end - begin));
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

} // namespace dstrain
