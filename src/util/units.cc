/**
 * @file
 * Formatting helpers for unit types.
 */

#include "util/units.hh"

#include <cmath>

#include "util/logging.hh"

namespace dstrain {

std::string
formatBytes(Bytes bytes)
{
    const double b = std::abs(bytes);
    if (b >= units::TB)
        return csprintf("%.2f TB", bytes / units::TB);
    if (b >= units::GB)
        return csprintf("%.2f GB", bytes / units::GB);
    if (b >= units::MB)
        return csprintf("%.2f MB", bytes / units::MB);
    if (b >= units::KB)
        return csprintf("%.2f kB", bytes / units::KB);
    return csprintf("%.0f B", bytes);
}

std::string
formatBandwidth(Bps bw)
{
    if (std::abs(bw) >= 0.01 * units::GBps)
        return csprintf("%.2f GBps", bw / units::GBps);
    return csprintf("%.2f MBps", bw / units::MBps);
}

std::string
formatTime(SimTime t)
{
    const double a = std::abs(t);
    if (a >= 1.0)
        return csprintf("%.3f s", t);
    if (a >= units::ms)
        return csprintf("%.3f ms", t / units::ms);
    if (a >= units::us)
        return csprintf("%.3f us", t / units::us);
    return csprintf("%.1f ns", t / units::ns);
}

std::string
formatParams(std::int64_t params)
{
    const double p = static_cast<double>(params);
    if (p >= 1e9)
        return csprintf("%.1f B", p / 1e9);
    if (p >= 1e6)
        return csprintf("%.1f M", p / 1e6);
    return csprintf("%lld", static_cast<long long>(params));
}

} // namespace dstrain
