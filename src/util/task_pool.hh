/**
 * @file
 * TaskPool: a small persistent worker pool for index-parallel loops.
 *
 * SweepRunner spawned fresh threads per sweep, which is fine at that
 * granularity, but the flow scheduler wants to fan independent
 * connected-component fills out *per event* — thread creation there
 * would dwarf the solve. TaskPool keeps its workers parked on a
 * condition variable between jobs, so a parallelFor() costs one
 * notify + one join handshake.
 *
 * The pool is deliberately minimal: one blocking parallelFor at a
 * time, indices claimed from an atomic cursor, the calling thread
 * participates as worker 0. Callers that need per-thread scratch
 * space key it off the `worker` argument, which is always in
 * [0, workers()).
 */

#ifndef DSTRAIN_UTIL_TASK_POOL_HH
#define DSTRAIN_UTIL_TASK_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dstrain {

/** A persistent pool running fn(index, worker) over [0, n). */
class TaskPool
{
  public:
    /** Loop body; must not throw. Called once per index. */
    using Body = std::function<void(std::size_t index, int worker)>;

    /**
     * @param threads extra worker threads to spawn; <= 0 means one
     * per hardware thread minus the caller. The calling thread always
     * participates, so workers() == threads + 1.
     */
    explicit TaskPool(int threads);
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Total executors, including the calling thread (>= 1). */
    int workers() const
    {
        return static_cast<int>(threads_.size()) + 1;
    }

    /**
     * Run body(i, worker) for every i in [0, n); blocks until all
     * indices complete. Bodies for distinct indices may run
     * concurrently; the same body is never invoked twice for one
     * index. Not reentrant: bodies must not call parallelFor on the
     * same pool.
     */
    void parallelFor(std::size_t n, const Body &body);

  private:
    /** @param worker this thread's worker id (>= 1; caller is 0). */
    void workerLoop(int worker);
    /** Claim and run indices until the current job is exhausted. */
    void drain(const Body &body, std::size_t n, int worker);

    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable wake_cv_;   // workers wait for a new job
    std::condition_variable done_cv_;   // parallelFor waits for drain
    const Body *job_ = nullptr;         // guarded by mu_
    std::size_t job_n_ = 0;             // guarded by mu_
    std::uint64_t job_id_ = 0;          // guarded by mu_
    std::atomic<std::size_t> cursor_{0};
    std::size_t completed_ = 0;         // guarded by mu_
    bool stop_ = false;                 // guarded by mu_
};

} // namespace dstrain

#endif // DSTRAIN_UTIL_TASK_POOL_HH
