/**
 * @file
 * Implementation of the table and CSV writers.
 */

#include "util/table.hh"

#include <algorithm>
#include <cctype>

#include "util/logging.hh"
#include "util/strings.hh"

namespace dstrain {

namespace {

/** Heuristic: a cell that parses as a number is right-aligned. */
bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    std::size_t i = 0;
    if (cell[0] == '-' || cell[0] == '+')
        i = 1;
    bool any_digit = false;
    for (; i < cell.size(); ++i) {
        const char c = cell[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            any_digit = true;
        } else if (c != '.' && c != 'e' && c != 'E' && c != '-' &&
                   c != '+' && c != '%' && c != 'x') {
            return false;
        }
    }
    return any_digit;
}

} // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    DSTRAIN_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    DSTRAIN_ASSERT(cells.size() == headers_.size(),
                   "row has %zu cells, table has %zu columns",
                   cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::size_t
TextTable::rowCount() const
{
    std::size_t n = 0;
    for (const auto &row : rows_)
        if (!row.empty())
            ++n;
    return n;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
        std::string line = "+";
        for (std::size_t w : widths)
            line += std::string(w + 2, '-') + "+";
        line += "\n";
        return line;
    };

    auto render_row = [&](const std::vector<std::string> &cells,
                          bool header) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const bool right = !header && looksNumeric(cells[c]);
            line += " ";
            line += right ? padLeft(cells[c], widths[c])
                          : padRight(cells[c], widths[c]);
            line += " |";
        }
        line += "\n";
        return line;
    };

    std::string out;
    if (!title_.empty())
        out += title_ + "\n";
    out += rule();
    out += render_row(headers_, true);
    out += rule();
    for (const auto &row : rows_) {
        if (row.empty())
            out += rule();
        else
            out += render_row(row, false);
    }
    out += rule();
    return out;
}

std::string
TextTable::renderCsv() const
{
    std::string out;
    std::vector<std::string> escaped;
    escaped.reserve(headers_.size());
    for (const auto &h : headers_)
        escaped.push_back(csvEscape(h));
    out += join(escaped, ",") + "\n";
    for (const auto &row : rows_) {
        if (row.empty())
            continue;
        escaped.clear();
        for (const auto &cell : row)
            escaped.push_back(csvEscape(cell));
        out += join(escaped, ",") + "\n";
    }
    return out;
}

std::ostream &
operator<<(std::ostream &os, const TextTable &table)
{
    return os << table.render();
}

std::string
csvEscape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

} // namespace dstrain
