/**
 * @file
 * Implementation of the persistent worker pool.
 */

#include "util/task_pool.hh"

namespace dstrain {

TaskPool::TaskPool(int threads)
{
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 1 ? static_cast<int>(hw) - 1 : 0;
    }
    threads_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        threads_.emplace_back([this, t] { workerLoop(t + 1); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void TaskPool::drain(const Body &body, std::size_t n, int worker)
{
    std::size_t claimed = 0;
    for (;;) {
        const std::size_t i =
            cursor_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        body(i, worker);
        ++claimed;
    }
    if (claimed == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    completed_ += claimed;
    if (completed_ == n)
        done_cv_.notify_all();
}

void TaskPool::workerLoop(int worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        const Body *body = nullptr;
        std::size_t n = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_cv_.wait(lock, [&] {
                return stop_ || (job_ != nullptr && job_id_ != seen);
            });
            if (stop_)
                return;
            seen = job_id_;
            body = job_;
            n = job_n_;
        }
        drain(*body, n, worker);
    }
}

void TaskPool::parallelFor(std::size_t n, const Body &body)
{
    if (n == 0)
        return;
    if (threads_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i, 0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = &body;
        job_n_ = n;
        completed_ = 0;
        cursor_.store(0, std::memory_order_relaxed);
        ++job_id_;
    }
    wake_cv_.notify_all();
    drain(body, n, 0);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return completed_ == n; });
    job_ = nullptr;
}

} // namespace dstrain
