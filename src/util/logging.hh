/**
 * @file
 * Logging and error-reporting facilities in the gem5 idiom.
 *
 * Four severities are provided, mirroring the discipline described in
 * the gem5 coding style:
 *
 *  - panic():  something happened that should never happen regardless
 *              of user input, i.e. a bug in dstrain itself. Aborts.
 *  - fatal():  the run cannot continue because of a user error (bad
 *              configuration, impossible topology, ...). Exits with
 *              status 1.
 *  - warn():   something is modeled approximately or suspiciously;
 *              the run continues.
 *  - inform(): plain status output for the user.
 *
 * All of them accept printf-style formatting through a small
 * type-safe std::format-like helper (we avoid <format> to keep
 * gcc-12 support simple and use a classic vsnprintf wrapper instead;
 * arguments are forwarded verbatim, so the usual printf caveats
 * apply and are checked by the compiler via the format attribute).
 */

#ifndef DSTRAIN_UTIL_LOGGING_HH
#define DSTRAIN_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace dstrain {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel {
    Silent,  ///< suppress warn()/inform()
    Normal,  ///< default: everything prints
    Debug,   ///< additionally print debugLog() messages
};

/** Set the global log level. Thread-compatible (set before running). */
void setLogLevel(LogLevel level);

/** Get the current global log level. */
LogLevel logLevel();

/**
 * Print an informational message (prefixed "info:") to stderr.
 * Suppressed when the level is Silent.
 */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Print a warning (prefixed "warn:") to stderr.
 * Suppressed when the level is Silent.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message (prefixed "debug:"); only at Debug level. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1).
 *
 * Use for conditions that are the user's fault: inconsistent
 * experiment configuration, topologies with no route, etc.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort().
 *
 * Use for conditions that indicate a bug in dstrain itself.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vcsprintf(const char *fmt, va_list args);

} // namespace dstrain

/**
 * Assert a dstrain-internal invariant with a formatted message.
 * Enabled in all build types (invariants in a simulator are cheap
 * relative to the modeling work and are worth keeping in release).
 */
#define DSTRAIN_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::dstrain::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                             __FILE__, __LINE__,                           \
                             ::dstrain::csprintf(__VA_ARGS__).c_str());    \
        }                                                                  \
    } while (0)

#endif // DSTRAIN_UTIL_LOGGING_HH
