/**
 * @file
 * Plain-text table and CSV writers used by every bench binary to
 * print paper-style rows. Columns are sized to their widest cell;
 * numeric cells are right-aligned, text cells left-aligned.
 */

#ifndef DSTRAIN_UTIL_TABLE_HH
#define DSTRAIN_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace dstrain {

/**
 * An ASCII table builder.
 *
 * Usage:
 * @code
 *   TextTable t({"Config", "TFLOP/s"});
 *   t.addRow({"DDP", "438"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Optional title printed above the table. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Render the table to a string. */
    std::string render() const;

    /** Render as CSV (title omitted, separators omitted). */
    std::string renderCsv() const;

    /** Number of data rows added so far (separators excluded). */
    std::size_t rowCount() const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    /** Rows; an empty vector marks a separator. */
    std::vector<std::vector<std::string>> rows_;
};

/** Stream a rendered table. */
std::ostream &operator<<(std::ostream &os, const TextTable &table);

/** Escape one CSV field (quotes fields containing , " or newline). */
std::string csvEscape(const std::string &field);

} // namespace dstrain

#endif // DSTRAIN_UTIL_TABLE_HH
