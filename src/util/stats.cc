/**
 * @file
 * Implementation of the statistics helpers.
 */

#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace dstrain {

double
SampleSeries::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
    return sum / static_cast<double>(samples_.size());
}

double
SampleSeries::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleSeries::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleSeries::percentile(double p) const
{
    return percentileOf(samples_, p);
}

BandwidthSummary
SampleSeries::summary() const
{
    return BandwidthSummary{mean(), percentile(90.0), max()};
}

double
percentileOf(const std::vector<double> &values, double p)
{
    DSTRAIN_ASSERT(p >= 0.0 && p <= 100.0, "percentile %.2f out of range", p);
    if (values.empty())
        return 0.0;
    std::vector<double> sorted(values);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();

    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace dstrain
