/**
 * @file
 * Small statistics helpers: running accumulators and percentile
 * summaries in the (average, 90th percentile, peak) format the paper
 * reports throughout Table IV and Table VI.
 */

#ifndef DSTRAIN_UTIL_STATS_HH
#define DSTRAIN_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace dstrain {

/**
 * The (avg, 90th percentile, peak) triple used for every bandwidth
 * summary in the paper.
 */
struct BandwidthSummary {
    double avg = 0.0;   ///< arithmetic mean of the samples
    double p90 = 0.0;   ///< 90th percentile of the samples
    double peak = 0.0;  ///< maximum sample
};

/**
 * Accumulates scalar samples and produces summary statistics.
 *
 * Samples are retained so that exact percentiles can be computed;
 * the sample counts in this simulator (one per telemetry bucket) are
 * small enough that this is never a concern.
 */
class SampleSeries
{
  public:
    /** Record one sample. */
    void add(double value) { samples_.push_back(value); }

    /** Number of samples recorded so far. */
    std::size_t size() const { return samples_.size(); }

    /** True when no samples have been recorded. */
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Maximum sample; 0 when empty. */
    double max() const;

    /** Minimum sample; 0 when empty. */
    double min() const;

    /**
     * Percentile via linear interpolation between closest ranks.
     *
     * @param p percentile in [0, 100].
     * @return the interpolated percentile; 0 when empty.
     */
    double percentile(double p) const;

    /** The paper's (avg, 90th, peak) summary. */
    BandwidthSummary summary() const;

    /** Read-only access to raw samples (for plotting/export). */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

/**
 * Compute a percentile of an arbitrary vector (convenience wrapper;
 * does not modify the input).
 */
double percentileOf(const std::vector<double> &values, double p);

} // namespace dstrain

#endif // DSTRAIN_UTIL_STATS_HH
