/**
 * @file
 * Implementation of the logging facilities.
 */

#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dstrain {

namespace {

LogLevel g_level = LogLevel::Normal;

/** Shared formatting-and-print helper for the message functions. */
void
emit(const char *prefix, const char *fmt, va_list args)
{
    std::string msg = vcsprintf(fmt, args);
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::string
vcsprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

void
inform(const char *fmt, ...)
{
    if (g_level == LogLevel::Silent)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (g_level == LogLevel::Silent)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn: ", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level != LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic: ", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace dstrain
