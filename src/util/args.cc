/**
 * @file
 * Implementation of the argument parser.
 */

#include "util/args.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/strings.hh"

namespace dstrain {

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

void
ArgParser::addOption(const std::string &name,
                     const std::string &default_value,
                     const std::string &help)
{
    DSTRAIN_ASSERT(options_.find(name) == options_.end(),
                   "option '--%s' declared twice", name.c_str());
    options_[name] = Option{default_value, help, false};
    declaration_order_.push_back(name);
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    DSTRAIN_ASSERT(options_.find(name) == options_.end(),
                   "flag '--%s' declared twice", name.c_str());
    options_[name] = Option{"", help, true};
    declaration_order_.push_back(name);
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(helpText().c_str(), stdout);
            return false;
        }
        if (!startsWith(arg, "--")) {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end()) {
            std::fprintf(stderr, "%s: unknown option '--%s'\n%s",
                         program_.c_str(), name.c_str(),
                         helpText().c_str());
            return false;
        }
        if (it->second.is_flag) {
            if (has_value) {
                std::fprintf(stderr,
                             "%s: flag '--%s' takes no value\n",
                             program_.c_str(), name.c_str());
                return false;
            }
            values_[name] = "true";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: option '--%s' needs a value\n",
                             program_.c_str(), name.c_str());
                return false;
            }
            value = argv[++i];
        }
        values_[name] = std::move(value);
    }
    return true;
}

const std::string &
ArgParser::get(const std::string &name) const
{
    auto it = options_.find(name);
    DSTRAIN_ASSERT(it != options_.end(), "undeclared option '--%s'",
                   name.c_str());
    auto given = values_.find(name);
    return given != values_.end() ? given->second
                                  : it->second.default_value;
}

int
ArgParser::getInt(const std::string &name) const
{
    const std::string &raw = get(name);
    char *end = nullptr;
    const long value = std::strtol(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0')
        fatal("option '--%s' expects an integer (got '%s')",
              name.c_str(), raw.c_str());
    return static_cast<int>(value);
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string &raw = get(name);
    char *end = nullptr;
    const double value = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0')
        fatal("option '--%s' expects a number (got '%s')",
              name.c_str(), raw.c_str());
    return value;
}

bool
ArgParser::getFlag(const std::string &name) const
{
    auto it = options_.find(name);
    DSTRAIN_ASSERT(it != options_.end() && it->second.is_flag,
                   "undeclared flag '--%s'", name.c_str());
    return values_.find(name) != values_.end();
}

bool
ArgParser::provided(const std::string &name) const
{
    return values_.find(name) != values_.end();
}

std::string
ArgParser::helpText() const
{
    std::string out =
        csprintf("%s — %s\n\nusage: %s [options]\n\noptions:\n",
                 program_.c_str(), summary_.c_str(), program_.c_str());
    for (const std::string &name : declaration_order_) {
        const Option &opt = options_.at(name);
        if (opt.is_flag) {
            out += csprintf("  --%-18s %s\n", name.c_str(),
                            opt.help.c_str());
        } else {
            out += csprintf("  --%-18s %s (default: %s)\n",
                            (name + " <v>").c_str(), opt.help.c_str(),
                            opt.default_value.c_str());
        }
    }
    out += "  --help               show this message\n";
    return out;
}

} // namespace dstrain
