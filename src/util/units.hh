/**
 * @file
 * Unit types and conversion helpers used throughout dstrain.
 *
 * Conventions (chosen to match the paper's reporting):
 *  - Time is simulated seconds, stored as double (`SimTime`).
 *  - Data sizes are bytes, stored as double (`Bytes`) because flow
 *    models hand out fractional bytes per interval; exact integer
 *    counts (e.g. parameters) use int64_t.
 *  - Bandwidth is bytes per second (`Bps`). The paper reports GBps =
 *    1e9 bytes per second (decimal, as link specs always are).
 *  - Compute rates are FLOP/s, reported as TFLOP/s = 1e12 FLOP/s.
 */

#ifndef DSTRAIN_UTIL_UNITS_HH
#define DSTRAIN_UTIL_UNITS_HH

#include <cstdint>
#include <string>

namespace dstrain {

/** Simulated time in seconds. */
using SimTime = double;

/** A data size in bytes (fractional values appear in fluid models). */
using Bytes = double;

/** A bandwidth in bytes per second. */
using Bps = double;

/** A compute rate in floating-point operations per second. */
using Flops = double;

namespace units {

// --- size literals (decimal, matching link/datasheet conventions) ---
inline constexpr Bytes KB = 1e3;
inline constexpr Bytes MB = 1e6;
inline constexpr Bytes GB = 1e9;
inline constexpr Bytes TB = 1e12;

// --- size literals (binary, for memory capacities) ---
inline constexpr Bytes KiB = 1024.0;
inline constexpr Bytes MiB = 1024.0 * 1024.0;
inline constexpr Bytes GiB = 1024.0 * 1024.0 * 1024.0;

// --- bandwidth literals ---
inline constexpr Bps GBps = 1e9;
inline constexpr Bps MBps = 1e6;
/** Network line rates quoted in Gbit/s. */
inline constexpr Bps Gbps = 1e9 / 8.0;

// --- time literals ---
inline constexpr SimTime us = 1e-6;
inline constexpr SimTime ms = 1e-3;
inline constexpr SimTime ns = 1e-9;

// --- compute literals ---
inline constexpr Flops TFLOPS = 1e12;
inline constexpr Flops GFLOPS = 1e9;

} // namespace units

/** Format a byte count with a human-friendly decimal suffix. */
std::string formatBytes(Bytes bytes);

/** Format a bandwidth as "X.XX GBps" (paper convention). */
std::string formatBandwidth(Bps bw);

/** Format a simulated time with an adaptive unit (ns/us/ms/s). */
std::string formatTime(SimTime t);

/** Format a parameter count as "X.X B" / "X.X M" (paper convention). */
std::string formatParams(std::int64_t params);

} // namespace dstrain

#endif // DSTRAIN_UTIL_UNITS_HH
