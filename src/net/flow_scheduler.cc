/**
 * @file
 * Implementation of the max-min fair flow scheduler.
 *
 * Three invariants drive the incremental paths (see DESIGN.md
 * "Performance architecture"):
 *
 *  - A new flow whose crossed resources all keep slack for its full
 *    cap (and whose only saturating resources carry no other flow)
 *    can be admitted at min(cap, min private capacity) without
 *    changing any existing rate: no resource crossed by another flow
 *    becomes saturated, so no existing flow's bottleneck moves.
 *
 *  - A finishing flow whose saturated resources carry no surviving
 *    flow can be removed without a recompute: capacity freed on an
 *    unsaturated (or now-idle) resource cannot unfreeze anyone,
 *    because every surviving flow is bottlenecked at its own cap or
 *    at a resource that stays saturated.
 *
 *  - Max-min rates of one connected component of the flow/resource
 *    sharing graph are independent of every other component: no
 *    resource couples them, so progressive filling restricted to the
 *    component walks the exact same increment sequence for its flows
 *    as the global pass does. The region solver exploits this to
 *    re-solve only the component(s) an event touches; flows outside
 *    keep their frozen rates, which by the same argument are still
 *    their global max-min rates.
 *
 * Everything else falls back to a water-filling pass (global or
 * region-scoped by mode) over flat, reusable per-resource arrays.
 */

#include "net/flow_scheduler.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace dstrain {

namespace {

/** Completion slack: remaining bytes below this count as done. */
constexpr Bytes kByteEpsilon = 1.0;

/** Residual capacity below this fraction counts as saturated. */
constexpr double kSaturationFraction = 1e-9;

} // namespace

FlowScheduler::FlowScheduler(Simulation &sim, Topology &topo,
                             FlowSolverMode mode, bool verify_fair_share)
    : sim_(sim), topo_(topo), mode_(mode), verify_(verify_fair_share)
{
    ensureResourceArrays();
}

FlowScheduler::~FlowScheduler()
{
    if (active_count_ != 0)
        warn("FlowScheduler destroyed with %zu active flows",
             active_count_);
}

void
FlowScheduler::ensureResourceArrays()
{
    const std::size_t n = topo_.resourceCount();
    if (eff_cap_.size() == n)
        return;
    const std::size_t old = eff_cap_.size();
    eff_cap_.resize(n);
    total_rate_.resize(n, 0.0);
    nflows_.resize(n, 0);
    residual_.resize(n, 0.0);
    crossing_.resize(n, 0);
    in_active_.resize(n, 0);
    res_flows_.resize(n);
    res_mark_.resize(n, 0);
    res_comp_mark_.resize(n, 0);
    res_saturated_.resize(n, 0);
    for (std::size_t i = old; i < n; ++i) {
        const Resource &r = topo_.resource(static_cast<ResourceId>(i));
        eff_cap_[i] = r.capacity * linkClassEfficiency(r.cls);
    }
}

bool
FlowScheduler::saturated(ResourceId rid) const
{
    return eff_cap_[rid] - total_rate_[rid] <=
           eff_cap_[rid] * kSaturationFraction;
}

// --- dense slot map ------------------------------------------------------

std::uint32_t
FlowScheduler::registerFlow(Flow f)
{
    std::uint32_t slot;
    if (free_slots_.empty()) {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(f));
        next_slot_.push_back(-1);
        prev_slot_.push_back(-1);
        flow_mark_.push_back(0);
        comp_mark_.push_back(0);
    } else {
        slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(f);
    }
    Flow &g = slots_[slot];
    slot_of_id_[static_cast<std::size_t>(g.id - 1)] =
        static_cast<std::int32_t>(slot);

    // Append at the tail: ids are issued monotonically, so the active
    // list stays in ascending-id order.
    next_slot_[slot] = -1;
    prev_slot_[slot] = tail_slot_;
    if (tail_slot_ >= 0)
        next_slot_[static_cast<std::size_t>(tail_slot_)] =
            static_cast<std::int32_t>(slot);
    else
        head_slot_ = static_cast<std::int32_t>(slot);
    tail_slot_ = static_cast<std::int32_t>(slot);

    g.res_pos.clear();
    for (std::size_t k = 0; k < g.resources.size(); ++k) {
        auto &lst = res_flows_[g.resources[k]];
        g.res_pos.push_back(static_cast<std::uint32_t>(lst.size()));
        lst.push_back({slot, static_cast<std::uint32_t>(k)});
    }
    order_.emplace(g.id, static_cast<std::int32_t>(slot));
    ++active_count_;
    return slot;
}

void
FlowScheduler::detachFlow(std::uint32_t slot)
{
    Flow &f = slots_[slot];
    for (std::size_t k = 0; k < f.resources.size(); ++k) {
        auto &lst = res_flows_[f.resources[k]];
        const std::uint32_t pos = f.res_pos[k];
        const ResFlow back = lst.back();
        lst[pos] = back;
        slots_[back.slot].res_pos[back.idx] = pos;
        lst.pop_back();
    }
    slot_of_id_[static_cast<std::size_t>(f.id - 1)] = -1;

    const std::int32_t prev = prev_slot_[slot];
    const std::int32_t next = next_slot_[slot];
    if (prev >= 0)
        next_slot_[static_cast<std::size_t>(prev)] = next;
    else
        head_slot_ = next;
    if (next >= 0)
        prev_slot_[static_cast<std::size_t>(next)] = prev;
    else
        tail_slot_ = prev;
    --active_count_;
}

void
FlowScheduler::releaseSlot(std::uint32_t slot)
{
    slots_[slot] = Flow();
    free_slots_.push_back(slot);
}

// --- region machinery ----------------------------------------------------

void
FlowScheduler::beginRegion()
{
    ++mark_epoch_;
    region_flows_.clear();
}

void
FlowScheduler::seedRegionFlow(std::uint32_t slot)
{
    if (flow_mark_[slot] != mark_epoch_) {
        flow_mark_[slot] = mark_epoch_;
        region_flows_.push_back(slot);
    }
}

void
FlowScheduler::seedRegionResource(ResourceId rid)
{
    for (const ResFlow &rf : res_flows_[rid])
        seedRegionFlow(rf.slot);
}

void
FlowScheduler::partitionComponents()
{
    // Close the seed set over shared resources and split it into
    // connected components in one sweep. Every resource of a seeded
    // flow joins, dragging in every flow crossing it — the ripple
    // propagation: any chain of shared (potentially saturating)
    // resources is followed to the full connected component, so no
    // rate outside a component can move.
    components_.clear();
    comp_ranges_.clear();
    ++comp_epoch_;
    for (std::uint32_t seed : region_flows_) {
        if (comp_mark_[seed] == comp_epoch_)
            continue;
        const std::size_t begin = components_.size();
        comp_ranges_.push_back(begin);
        comp_mark_[seed] = comp_epoch_;
        components_.push_back(seed);
        for (std::size_t i = begin; i < components_.size(); ++i) {
            const Flow &f = slots_[components_[i]];
            for (ResourceId rid : f.resources) {
                if (res_comp_mark_[rid] == comp_epoch_)
                    continue;
                res_comp_mark_[rid] = comp_epoch_;
                for (const ResFlow &rf : res_flows_[rid]) {
                    if (comp_mark_[rf.slot] != comp_epoch_) {
                        comp_mark_[rf.slot] = comp_epoch_;
                        components_.push_back(rf.slot);
                    }
                }
            }
        }
        // Components stay in BFS discovery order — deterministic for
        // a given event history, and sufficient: the fill arithmetic
        // is order-insensitive (min-reductions plus a uniform
        // increment), and every order-*observable* consumer (totals,
        // finisher callbacks) iterates order_, not components_.
    }
}

void
FlowScheduler::fillComponent(std::size_t begin, std::size_t end)
{
    // Progressive filling over one connected component of
    // components_. The component is closed under sharing, so each
    // resource's crossing count and residual init are self-contained
    // and the fill never reads rate state outside the component.
    //
    // Filling per component — rather than one global pass with a
    // global min — is the bit-exact definition of fair share here: a
    // global fill interleaves increment rounds across unrelated
    // components, so its floating-point sums can differ from a local
    // fill in the last bit, which would make incremental region
    // solves irreproducible. Every path (region solve, Global-mode
    // recompute, the verify oracle) fills per component.
    unfrozen_.clear();
    comp_resources_.clear();
    for (std::size_t i = begin; i < end; ++i) {
        Flow &f = slots_[components_[i]];
        f.rate = 0.0;
        unfrozen_.push_back(&f);
        for (ResourceId rid : f.resources) {
            if (crossing_[rid]++ == 0) {
                residual_[rid] = eff_cap_[rid];
                comp_resources_.push_back(rid);
                active_resources_.push_back(rid);
            }
        }
    }

    while (!unfrozen_.empty()) {
        double inc = std::numeric_limits<double>::max();
        for (ResourceId rid : comp_resources_) {
            const int n = crossing_[rid];
            if (n > 0)
                inc = std::min(inc, residual_[rid] / n);
        }
        for (Flow *f : unfrozen_)
            inc = std::min(inc, f->cap - f->rate);
        DSTRAIN_ASSERT(inc >= 0.0, "negative water-filling increment");

        for (Flow *f : unfrozen_)
            f->rate += inc;
        for (ResourceId rid : comp_resources_) {
            residual_[rid] -= inc * crossing_[rid];
            // One saturation test per resource per round; the per-flow
            // freeze check reads the flag instead of re-deriving it.
            // Every resource an unfrozen flow crosses has crossing_
            // >= 1 and so is still in comp_resources_ with a fresh
            // flag.
            res_saturated_[rid] = residual_[rid] <=
                                  eff_cap_[rid] * kSaturationFraction;
        }

        still_.clear();
        bool any_frozen = false;
        for (Flow *f : unfrozen_) {
            bool froze = f->rate >= f->cap * (1.0 - kSaturationFraction);
            if (!froze) {
                for (ResourceId rid : f->resources) {
                    if (res_saturated_[rid]) {
                        froze = true;
                        break;
                    }
                }
            }
            if (froze) {
                any_frozen = true;
                for (ResourceId rid : f->resources)
                    crossing_[rid] -= 1;
            } else {
                still_.push_back(f);
            }
        }
        DSTRAIN_ASSERT(any_frozen || still_.empty(),
                       "water-filling failed to make progress");
        unfrozen_.swap(still_);

        // Drop resources no unfrozen flow crosses anymore: with a
        // crossing count of zero they cannot bind the increment and
        // their residual stops moving (inc times zero), so removal is
        // bit-exact and the round scans keep shrinking.
        std::size_t w = 0;
        for (ResourceId rid : comp_resources_)
            if (crossing_[rid] > 0)
                comp_resources_[w++] = rid;
        comp_resources_.resize(w);
    }
}

void
FlowScheduler::solveRegion()
{
    partitionComponents();
    if (components_.empty())
        return;

    ++stats_.recomputes;
    ++stats_.region_solves;
    stats_.region_flows += components_.size();
    stats_.region_peak =
        std::max<std::uint64_t>(stats_.region_peak, components_.size());
    std::size_t bucket = 0;
    for (std::size_t n = components_.size(); n > 1; n >>= 1)
        ++bucket;
    stats_.region_hist[std::min(bucket, kRegionHistBuckets - 1)] += 1;

    active_resources_.clear();
    for (std::size_t c = 0; c < comp_ranges_.size(); ++c) {
        const std::size_t end = (c + 1 < comp_ranges_.size())
                                    ? comp_ranges_[c + 1]
                                    : components_.size();
        fillComponent(comp_ranges_[c], end);
    }

    // --- region telemetry logs -------------------------------------------
    // Only the region's resources can have changed; every other log
    // already holds its (unchanged) rate. The totals accumulate in
    // order_'s iteration order — the legacy container order the
    // golden fingerprints pin. A different summation order can move
    // the last bit, and the closure guarantees every flow crossing a
    // region resource is component-marked, so the marked subsequence
    // of order_ contributes to each region total in exactly the order
    // the legacy full pass did.
    const SimTime now = sim_.now();
    for (ResourceId rid : active_resources_)
        total_rate_[rid] = 0.0;
    for (const auto &[id, s] : order_) {
        const std::uint32_t slot = static_cast<std::uint32_t>(s);
        if (comp_mark_[slot] != comp_epoch_)
            continue;
        const Flow &f = slots_[slot];
        for (ResourceId rid : f.resources)
            total_rate_[rid] += f.rate;
    }
    for (ResourceId rid : active_resources_) {
        topo_.resource(rid).log.setRate(now, total_rate_[rid]);
        ++stats_.rate_updates;
    }
}

void
FlowScheduler::zeroIfIdle(ResourceId rid)
{
    if (nflows_[rid] != 0 || res_mark_[rid] == mark_epoch_)
        return;
    res_mark_[rid] = mark_epoch_;
    total_rate_[rid] = 0.0;
    topo_.resource(rid).log.setRate(sim_.now(), 0.0);
    ++stats_.rate_updates;
}

// --- public API ----------------------------------------------------------

FlowId
FlowScheduler::start(FlowSpec spec)
{
    DSTRAIN_ASSERT(spec.route.valid(), "flow '%s' has no route",
                   spec.tag.c_str());
    DSTRAIN_ASSERT(spec.bytes >= 0.0, "flow '%s' has negative size",
                   spec.tag.c_str());

    FlowId id = next_id_++;
    slot_of_id_.push_back(-1);
    if (spec.bytes <= kByteEpsilon) {
        // Degenerate transfer: complete via a zero-delay event so the
        // caller's state machine always advances asynchronously. The
        // flow is never registered: isActive(id) is false and
        // currentRate(id) is 0, the same as any finished flow.
        if (spec.on_complete)
            sim_.events().scheduleAfter(0.0, std::move(spec.on_complete));
        return id;
    }

    Flow f;
    f.id = id;
    f.remaining = spec.bytes;
    f.on_complete = std::move(spec.on_complete);
    f.tag = std::move(spec.tag);
    f.cap = spec.route.rate_cap;
    if (spec.rate_cap > 0.0)
        f.cap = std::min(f.cap, spec.rate_cap);
    DSTRAIN_ASSERT(f.cap > 0.0, "flow '%s' has zero rate cap",
                   f.tag.c_str());

    for (HalfLinkId hid : spec.route.hops) {
        ResourceId rid = topo_.halfLink(hid).resource;
        if (std::find(f.resources.begin(), f.resources.end(), rid) ==
            f.resources.end()) {
            f.resources.push_back(rid);
        }
    }
    for (ResourceId rid : spec.extra_resources) {
        if (std::find(f.resources.begin(), f.resources.end(), rid) ==
            f.resources.end()) {
            f.resources.push_back(rid);
        }
    }

    settle();
    ensureResourceArrays();
    for (ResourceId rid : f.resources)
        nflows_[rid] += 1;
    // Verify mode forces the full solve: the oracle is a from-scratch
    // component fill, and a fast-path rate — assigned directly rather
    // than summed through fill increments — matches it mathematically
    // but not always in the last bit. Disabling the fast paths keeps
    // the invariant "stored rate == fresh fill of its component"
    // exact, so the oracle flags real closure bugs, not float dust.
    if (!verify_ && tryFastStart(f)) {
        ++stats_.fast_starts;
        registerFlow(std::move(f));
        maybeVerify();
        return id;
    }
    const std::uint32_t slot = registerFlow(std::move(f));
    if (mode_ == FlowSolverMode::Global) {
        recompute();
    } else {
        beginRegion();
        seedRegionFlow(slot);
        solveRegion();
        scheduleNextCompletion();
    }
    maybeVerify();
    return id;
}

bool
FlowScheduler::tryFastStart(Flow &f)
{
    // Pass 1: the admitted rate — the cap, further limited by
    // resources this flow has to itself (which it may saturate).
    double rate = f.cap;
    for (ResourceId rid : f.resources) {
        if (nflows_[rid] == 1)  // counting this flow
            rate = std::min(rate, eff_cap_[rid]);
    }
    // A private resource faulted to zero capacity admits nothing:
    // fall through to water-filling, which parks the flow at rate 0.
    if (rate <= 0.0)
        return false;
    // Pass 2: every shared resource must keep slack for the full
    // admitted rate, i.e. stay strictly unsaturated afterwards.
    for (ResourceId rid : f.resources) {
        if (nflows_[rid] == 1)
            continue;
        const double slack_after =
            eff_cap_[rid] - total_rate_[rid] - rate;
        if (slack_after <= eff_cap_[rid] * kSaturationFraction)
            return false;
    }

    const SimTime now = sim_.now();
    f.rate = rate;
    for (ResourceId rid : f.resources) {
        total_rate_[rid] += rate;
        topo_.resource(rid).log.setRate(now, total_rate_[rid]);
        ++stats_.rate_updates;
        if (mode_ == FlowSolverMode::Global) {
            // The global pass zeroes stale logs via the sorted
            // touched_ set; the region solver zeroes at removal time
            // instead and never reads it.
            auto it =
                std::lower_bound(touched_.begin(), touched_.end(), rid);
            if (it == touched_.end() || *it != rid)
                touched_.insert(it, rid);
        }
    }

    const SimTime done_at = now + f.remaining / f.rate;
    if (completion_event_ == 0 || done_at < completion_time_) {
        if (completion_event_ != 0)
            sim_.events().cancel(completion_event_);
        completion_time_ = done_at;
        completion_event_ = sim_.events().schedule(
            done_at, [this] { onCompletionEvent(); });
    }
    return true;
}

Bps
FlowScheduler::currentRate(FlowId id) const
{
    const std::int32_t slot = slotOf(id);
    return slot < 0 ? 0.0 : slots_[static_cast<std::size_t>(slot)].rate;
}

bool
FlowScheduler::isActive(FlowId id) const
{
    return slotOf(id) >= 0;
}

void
FlowScheduler::setCapacity(ResourceId rid, Bps capacity)
{
    DSTRAIN_ASSERT(capacity >= 0.0, "negative capacity for resource %d",
                   rid);
    ensureResourceArrays();
    DSTRAIN_ASSERT(rid >= 0 &&
                       static_cast<std::size_t>(rid) < eff_cap_.size(),
                   "bad resource id %d", rid);
    Resource &r = topo_.resource(rid);
    const double new_eff = capacity * linkClassEfficiency(r.cls);
    r.capacity = capacity;
    if (new_eff == eff_cap_[rid])
        return;
    ++stats_.capacity_updates;

    // Fast path: with no crossing flows — or with the resource
    // strictly unsaturated under both the old and the new capacity —
    // every flow's bottleneck stays where it is, so no rate changes
    // and neither a recompute nor a log write is needed.
    const bool slack_before = !saturated(rid);
    eff_cap_[rid] = new_eff;
    const bool slack_after = new_eff > 0.0 && !saturated(rid);
    if (nflows_[rid] == 0 || (slack_before && slack_after)) {
        ++stats_.fast_capacity_updates;
        return;
    }

    settle();
    if (mode_ == FlowSolverMode::Global) {
        recompute();
    } else {
        beginRegion();
        seedRegionResource(rid);
        solveRegion();
        scheduleNextCompletion();
    }
    maybeVerify();
}

void
FlowScheduler::setCapacities(
    const std::vector<std::pair<ResourceId, Bps>> &updates)
{
    ensureResourceArrays();
    bool any_change = false;
    bool need_solve = false;
    cap_dirty_.clear();
    for (const auto &[rid, capacity] : updates) {
        DSTRAIN_ASSERT(capacity >= 0.0,
                       "negative capacity for resource %d", rid);
        DSTRAIN_ASSERT(rid >= 0 && static_cast<std::size_t>(rid) <
                                       eff_cap_.size(),
                       "bad resource id %d", rid);
        Resource &r = topo_.resource(rid);
        const double new_eff = capacity * linkClassEfficiency(r.cls);
        r.capacity = capacity;
        if (new_eff == eff_cap_[rid])
            continue;
        any_change = true;
        const bool slack_before = !saturated(rid);
        eff_cap_[rid] = new_eff;
        const bool slack_after = new_eff > 0.0 && !saturated(rid);
        if (nflows_[rid] == 0)
            continue;
        // Every changed resource with flows seeds the solve region
        // (not just the ones failing the fast check): the batch is
        // solved against pre-batch rates, so a jointly affected
        // resource must not be skipped on a stale individual check.
        cap_dirty_.push_back(rid);
        if (!(slack_before && slack_after))
            need_solve = true;
    }
    if (!any_change)
        return;
    ++stats_.capacity_updates;  // the whole batch counts once
    if (!need_solve) {
        ++stats_.fast_capacity_updates;
        maybeVerify();
        return;
    }

    settle();
    if (mode_ == FlowSolverMode::Global) {
        recompute();
    } else {
        beginRegion();
        for (ResourceId rid : cap_dirty_)
            seedRegionResource(rid);
        solveRegion();
        scheduleNextCompletion();
    }
    maybeVerify();
}

bool
FlowScheduler::cancel(FlowId id, Bytes *remaining)
{
    const std::int32_t s = slotOf(id);
    if (s < 0)
        return false;
    const std::uint32_t slot = static_cast<std::uint32_t>(s);
    settle();
    if (remaining)
        *remaining = slots_[slot].remaining;
    for (ResourceId rid : slots_[slot].resources)
        nflows_[rid] -= 1;
    order_.erase(id);
    detachFlow(slot);
    Flow removed = std::move(slots_[slot]);
    releaseSlot(slot);
    ++stats_.cancels;
    if (mode_ == FlowSolverMode::Global) {
        recompute();
    } else {
        beginRegion();
        for (ResourceId rid : removed.resources)
            zeroIfIdle(rid);
        // zeroIfIdle shares the mark epoch; a resource marked idle
        // has no flows, so it can never be (re)seeded anyway.
        for (ResourceId rid : removed.resources)
            seedRegionResource(rid);
        solveRegion();
        scheduleNextCompletion();
    }
    maybeVerify();
    return true;
}

std::size_t
FlowScheduler::cancelAll()
{
    if (active_count_ == 0)
        return 0;
    settle();
    const std::size_t n = active_count_;
    order_.clear();
    if (mode_ == FlowSolverMode::Global) {
        for (std::int32_t s = head_slot_; s >= 0;) {
            const std::uint32_t slot = static_cast<std::uint32_t>(s);
            s = next_slot_[slot];
            for (ResourceId rid : slots_[slot].resources)
                nflows_[rid] -= 1;
            detachFlow(slot);
            releaseSlot(slot);
        }
        stats_.cancels += n;
        // One recompute over the (now empty) flow set: every
        // previously touched resource logs a rate of exactly zero, so
        // the abort instant is bit-reproducible.
        recompute();
    } else {
        beginRegion();  // epoch for zeroIfIdle deduplication
        for (std::int32_t s = head_slot_; s >= 0;) {
            const std::uint32_t slot = static_cast<std::uint32_t>(s);
            s = next_slot_[slot];
            for (ResourceId rid : slots_[slot].resources)
                nflows_[rid] -= 1;
            detachFlow(slot);
            Flow removed = std::move(slots_[slot]);
            releaseSlot(slot);
            for (ResourceId rid : removed.resources)
                zeroIfIdle(rid);
        }
        stats_.cancels += n;
        scheduleNextCompletion();  // cancels the pending event
    }
    maybeVerify();
    return n;
}

bool
FlowScheduler::stalledByFault(const Flow &f) const
{
    for (ResourceId rid : f.resources)
        if (eff_cap_[rid] <= 0.0)
            return true;
    return false;
}

void
FlowScheduler::settle()
{
    const SimTime now = sim_.now();
    const SimTime dt = now - last_settle_;
    DSTRAIN_ASSERT(dt >= 0.0, "settle time went backwards");
    if (dt > 0.0) {
        for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s]) {
            Flow &f = slots_[static_cast<std::size_t>(s)];
            f.remaining -= f.rate * dt;
            if (f.remaining < 0.0)
                f.remaining = 0.0;
        }
    }
    last_settle_ = now;
}

void
FlowScheduler::recompute()
{
    const SimTime now = sim_.now();
    ensureResourceArrays();
    ++stats_.recomputes;

    // --- water-filling ---------------------------------------------------
    // Seed every active flow, split into connected components, and
    // fill each component independently. Filling per component is the
    // bit-exact definition of fair share (see fillComponent()): it
    // makes Global mode, the incremental region solver, and the
    // verify oracle produce identical rates down to the last bit.
    region_flows_.clear();
    for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s])
        region_flows_.push_back(static_cast<std::uint32_t>(s));
    partitionComponents();

    active_resources_.clear();
    for (std::size_t c = 0; c < comp_ranges_.size(); ++c) {
        const std::size_t end = (c + 1 < comp_ranges_.size())
                                    ? comp_ranges_[c + 1]
                                    : components_.size();
        fillComponent(comp_ranges_[c], end);
    }

    // --- update telemetry logs -------------------------------------------
    // Totals accumulate in order_'s iteration order — the legacy
    // container order the golden fingerprints pin (summation order
    // moves the last bit; see solveRegion()).
    for (ResourceId rid : active_resources_)
        total_rate_[rid] = 0.0;
    for (const auto &[id, s] : order_) {
        const Flow &f = slots_[static_cast<std::uint32_t>(s)];
        for (ResourceId rid : f.resources)
            total_rate_[rid] += f.rate;
    }

    std::sort(active_resources_.begin(), active_resources_.end());
    for (ResourceId rid : active_resources_)
        in_active_[rid] = 1;
    // Zero out resources that had traffic before but no longer do.
    for (ResourceId rid : touched_) {
        if (!in_active_[rid]) {
            topo_.resource(rid).log.setRate(now, 0.0);
            ++stats_.rate_updates;
            total_rate_[rid] = 0.0;
        }
    }
    touched_.assign(active_resources_.begin(), active_resources_.end());
    for (ResourceId rid : touched_) {
        topo_.resource(rid).log.setRate(now, total_rate_[rid]);
        ++stats_.rate_updates;
        in_active_[rid] = 0;
    }

    scheduleNextCompletion();
}

void
FlowScheduler::scheduleNextCompletion()
{
    if (completion_event_ != 0) {
        sim_.events().cancel(completion_event_);
        completion_event_ = 0;
    }
    if (active_count_ == 0)
        return;

    SimTime best = std::numeric_limits<SimTime>::max();
    for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s]) {
        const Flow &f = slots_[static_cast<std::size_t>(s)];
        if (f.rate <= 0.0) {
            // Water-filling assigns rate 0 only to flows stranded on
            // a link faulted to zero capacity: they have no finish
            // time and resume when setCapacity() restores the link.
            DSTRAIN_ASSERT(stalledByFault(f),
                           "active flow '%s' got zero rate",
                           f.tag.c_str());
            continue;
        }
        best = std::min(best, f.remaining / f.rate);
    }
    if (best == std::numeric_limits<SimTime>::max())
        return;  // everything stalled: nothing to schedule
    completion_time_ = sim_.now() + best;
    completion_event_ = sim_.events().schedule(
        completion_time_, [this] { onCompletionEvent(); });
}

void
FlowScheduler::onCompletionEvent()
{
    completion_event_ = 0;
    settle();

    // Collect finished flows first so callbacks observe a consistent
    // scheduler state (finished flows removed, rates recomputed).
    // Reuse the member buffers but operate on moved-out locals so a
    // callback that re-enters the scheduler can't alias them.
    std::vector<Flow> finished = std::move(finished_);
    std::vector<std::function<void()>> callbacks = std::move(callbacks_);
    finished.clear();
    callbacks.clear();

    // Collect finishers in order_'s iteration order — the legacy
    // container order the golden fingerprint hashes were captured
    // under (see the order_ member comment). The order is observable:
    // completion callbacks schedule follow-up work, so it decides
    // which dependent task grabs shared capacity first.
    for (auto it = order_.begin(); it != order_.end();) {
        const std::uint32_t slot =
            static_cast<std::uint32_t>(it->second);
        if (slots_[slot].remaining <= kByteEpsilon) {
            it = order_.erase(it);
            detachFlow(slot);
            finished.push_back(std::move(slots_[slot]));
            releaseSlot(slot);
        } else {
            ++it;
        }
    }

    // A full recompute is needed only when a finisher frees capacity
    // on a saturated resource some surviving flow still crosses.
    // Verify mode always takes it (see the fast-start gate in
    // start()): survivors' rates were filled with the finisher as a
    // participant, and a fresh fill without it walks a different
    // increment sequence — equal mathematically, not always bitwise.
    bool need_full = verify_;
    for (const Flow &f : finished)
        for (ResourceId rid : f.resources)
            nflows_[rid] -= 1;
    for (const Flow &f : finished) {
        for (ResourceId rid : f.resources) {
            if (nflows_[rid] > 0 && saturated(rid)) {
                need_full = true;
                break;
            }
        }
        if (need_full)
            break;
    }

    if (need_full) {
        for (Flow &f : finished)
            if (f.on_complete)
                callbacks.push_back(std::move(f.on_complete));
        if (mode_ == FlowSolverMode::Global) {
            recompute();
        } else {
            beginRegion();
            for (const Flow &f : finished)
                for (ResourceId rid : f.resources)
                    zeroIfIdle(rid);
            for (const Flow &f : finished)
                for (ResourceId rid : f.resources)
                    seedRegionResource(rid);
            solveRegion();
            scheduleNextCompletion();
        }
    } else {
        const SimTime now = sim_.now();
        for (Flow &f : finished) {
            ++stats_.fast_finishes;
            for (ResourceId rid : f.resources) {
                total_rate_[rid] -= f.rate;
                // Snap float dust so idle resources read exactly 0.
                if (nflows_[rid] == 0 || total_rate_[rid] < 0.0)
                    total_rate_[rid] = 0.0;
                topo_.resource(rid).log.setRate(now, total_rate_[rid]);
                ++stats_.rate_updates;
            }
            if (f.on_complete)
                callbacks.push_back(std::move(f.on_complete));
        }
        scheduleNextCompletion();
    }
    maybeVerify();

    for (auto &cb : callbacks)
        cb();

    // Return the buffers (and their capacity) for the next event.
    finished.clear();
    callbacks.clear();
    finished_ = std::move(finished);
    callbacks_ = std::move(callbacks);
}

void
FlowScheduler::oracleFillComponent(std::size_t begin, std::size_t end)
{
    // fillComponent(), writing scratch rates: identical arithmetic,
    // but into oracle_rate_ instead of Flow::rate so flow state, logs
    // and totals stay untouched.
    oracle_unfrozen_.clear();
    comp_resources_.clear();
    for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t slot = components_[i];
        oracle_rate_[slot] = 0.0;
        oracle_unfrozen_.push_back(slot);
        for (ResourceId rid : slots_[slot].resources) {
            if (crossing_[rid]++ == 0) {
                residual_[rid] = eff_cap_[rid];
                comp_resources_.push_back(rid);
            }
        }
    }

    while (!oracle_unfrozen_.empty()) {
        double inc = std::numeric_limits<double>::max();
        for (ResourceId rid : comp_resources_) {
            const int n = crossing_[rid];
            if (n > 0)
                inc = std::min(inc, residual_[rid] / n);
        }
        for (std::uint32_t slot : oracle_unfrozen_)
            inc = std::min(inc, slots_[slot].cap - oracle_rate_[slot]);
        DSTRAIN_ASSERT(inc >= 0.0, "negative water-filling increment");

        for (std::uint32_t slot : oracle_unfrozen_)
            oracle_rate_[slot] += inc;
        for (ResourceId rid : comp_resources_) {
            residual_[rid] -= inc * crossing_[rid];
            res_saturated_[rid] = residual_[rid] <=
                                  eff_cap_[rid] * kSaturationFraction;
        }

        oracle_still_.clear();
        bool any_frozen = false;
        for (std::uint32_t slot : oracle_unfrozen_) {
            const Flow &f = slots_[slot];
            bool froze =
                oracle_rate_[slot] >= f.cap * (1.0 - kSaturationFraction);
            if (!froze) {
                for (ResourceId rid : f.resources) {
                    if (res_saturated_[rid]) {
                        froze = true;
                        break;
                    }
                }
            }
            if (froze) {
                any_frozen = true;
                for (ResourceId rid : f.resources)
                    crossing_[rid] -= 1;
            } else {
                oracle_still_.push_back(slot);
            }
        }
        DSTRAIN_ASSERT(any_frozen || oracle_still_.empty(),
                       "water-filling failed to make progress");
        oracle_unfrozen_.swap(oracle_still_);

        std::size_t w = 0;
        for (ResourceId rid : comp_resources_)
            if (crossing_[rid] > 0)
                comp_resources_[w++] = rid;
        comp_resources_.resize(w);
    }
}

void
FlowScheduler::maybeVerify()
{
    if (!verify_)
        return;
    ++stats_.verified_solves;

    // The oracle: a from-scratch per-component fill over every active
    // flow — the same definition of fair share recompute() computes —
    // into scratch rates. crossing_/residual_ are safe to reuse:
    // every solve leaves crossing_ at zero.
    oracle_rate_.resize(slots_.size());
    region_flows_.clear();
    for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s])
        region_flows_.push_back(static_cast<std::uint32_t>(s));
    partitionComponents();
    for (std::size_t c = 0; c < comp_ranges_.size(); ++c) {
        const std::size_t end = (c + 1 < comp_ranges_.size())
                                    ? comp_ranges_[c + 1]
                                    : components_.size();
        oracleFillComponent(comp_ranges_[c], end);
    }

    for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s]) {
        const std::uint32_t slot = static_cast<std::uint32_t>(s);
        const Flow &f = slots_[slot];
        if (oracle_rate_[slot] != f.rate) {
            fatal("verify-fair-share: flow '%s' (id %llu) rate %a "
                  "diverged from the oracle's %a at t=%g",
                  f.tag.c_str(),
                  static_cast<unsigned long long>(f.id), f.rate,
                  oracle_rate_[slot], sim_.now());
        }
    }
}

void
FlowScheduler::finalizeLogs()
{
    settle();
    topo_.finalizeLogs(sim_.now());
}

} // namespace dstrain
