/**
 * @file
 * Implementation of the max-min fair flow scheduler.
 *
 * Two invariants drive the incremental paths (see DESIGN.md
 * "Performance architecture"):
 *
 *  - A new flow whose crossed resources all keep slack for its full
 *    cap (and whose only saturating resources carry no other flow)
 *    can be admitted at min(cap, min private capacity) without
 *    changing any existing rate: no resource crossed by another flow
 *    becomes saturated, so no existing flow's bottleneck moves.
 *
 *  - A finishing flow whose saturated resources carry no surviving
 *    flow can be removed without a recompute: capacity freed on an
 *    unsaturated (or now-idle) resource cannot unfreeze anyone,
 *    because every surviving flow is bottlenecked at its own cap or
 *    at a resource that stays saturated.
 *
 * Everything else falls back to a full water-filling pass over flat,
 * reusable per-resource arrays.
 */

#include "net/flow_scheduler.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace dstrain {

namespace {

/** Completion slack: remaining bytes below this count as done. */
constexpr Bytes kByteEpsilon = 1.0;

/** Residual capacity below this fraction counts as saturated. */
constexpr double kSaturationFraction = 1e-9;

} // namespace

FlowScheduler::FlowScheduler(Simulation &sim, Topology &topo)
    : sim_(sim), topo_(topo)
{
    ensureResourceArrays();
}

FlowScheduler::~FlowScheduler()
{
    if (!flows_.empty())
        warn("FlowScheduler destroyed with %zu active flows",
             flows_.size());
}

void
FlowScheduler::ensureResourceArrays()
{
    const std::size_t n = topo_.resourceCount();
    if (eff_cap_.size() == n)
        return;
    const std::size_t old = eff_cap_.size();
    eff_cap_.resize(n);
    total_rate_.resize(n, 0.0);
    nflows_.resize(n, 0);
    residual_.resize(n, 0.0);
    crossing_.resize(n, 0);
    in_active_.resize(n, 0);
    for (std::size_t i = old; i < n; ++i) {
        const Resource &r = topo_.resource(static_cast<ResourceId>(i));
        eff_cap_[i] = r.capacity * linkClassEfficiency(r.cls);
    }
}

bool
FlowScheduler::saturated(ResourceId rid) const
{
    return eff_cap_[rid] - total_rate_[rid] <=
           eff_cap_[rid] * kSaturationFraction;
}

FlowId
FlowScheduler::start(FlowSpec spec)
{
    DSTRAIN_ASSERT(spec.route.valid(), "flow '%s' has no route",
                   spec.tag.c_str());
    DSTRAIN_ASSERT(spec.bytes >= 0.0, "flow '%s' has negative size",
                   spec.tag.c_str());

    FlowId id = next_id_++;
    if (spec.bytes <= kByteEpsilon) {
        // Degenerate transfer: complete via a zero-delay event so the
        // caller's state machine always advances asynchronously. The
        // flow is never registered: isActive(id) is false and
        // currentRate(id) is 0, the same as any finished flow.
        if (spec.on_complete)
            sim_.events().scheduleAfter(0.0, std::move(spec.on_complete));
        return id;
    }

    Flow f;
    f.id = id;
    f.remaining = spec.bytes;
    f.on_complete = std::move(spec.on_complete);
    f.tag = std::move(spec.tag);
    f.cap = spec.route.rate_cap;
    if (spec.rate_cap > 0.0)
        f.cap = std::min(f.cap, spec.rate_cap);
    DSTRAIN_ASSERT(f.cap > 0.0, "flow '%s' has zero rate cap",
                   f.tag.c_str());

    for (HalfLinkId hid : spec.route.hops) {
        ResourceId rid = topo_.halfLink(hid).resource;
        if (std::find(f.resources.begin(), f.resources.end(), rid) ==
            f.resources.end()) {
            f.resources.push_back(rid);
        }
    }
    for (ResourceId rid : spec.extra_resources) {
        if (std::find(f.resources.begin(), f.resources.end(), rid) ==
            f.resources.end()) {
            f.resources.push_back(rid);
        }
    }

    settle();
    ensureResourceArrays();
    for (ResourceId rid : f.resources)
        nflows_[rid] += 1;
    if (tryFastStart(f)) {
        ++stats_.fast_starts;
        flows_.emplace(id, std::move(f));
        return id;
    }
    flows_.emplace(id, std::move(f));
    recompute();
    return id;
}

bool
FlowScheduler::tryFastStart(Flow &f)
{
    // Pass 1: the admitted rate — the cap, further limited by
    // resources this flow has to itself (which it may saturate).
    double rate = f.cap;
    for (ResourceId rid : f.resources) {
        if (nflows_[rid] == 1)  // counting this flow
            rate = std::min(rate, eff_cap_[rid]);
    }
    // A private resource faulted to zero capacity admits nothing:
    // fall through to water-filling, which parks the flow at rate 0.
    if (rate <= 0.0)
        return false;
    // Pass 2: every shared resource must keep slack for the full
    // admitted rate, i.e. stay strictly unsaturated afterwards.
    for (ResourceId rid : f.resources) {
        if (nflows_[rid] == 1)
            continue;
        const double slack_after =
            eff_cap_[rid] - total_rate_[rid] - rate;
        if (slack_after <= eff_cap_[rid] * kSaturationFraction)
            return false;
    }

    const SimTime now = sim_.now();
    f.rate = rate;
    for (ResourceId rid : f.resources) {
        total_rate_[rid] += rate;
        topo_.resource(rid).log.setRate(now, total_rate_[rid]);
        ++stats_.rate_updates;
        auto it =
            std::lower_bound(touched_.begin(), touched_.end(), rid);
        if (it == touched_.end() || *it != rid)
            touched_.insert(it, rid);
    }

    const SimTime done_at = now + f.remaining / f.rate;
    if (completion_event_ == 0 || done_at < completion_time_) {
        if (completion_event_ != 0)
            sim_.events().cancel(completion_event_);
        completion_time_ = done_at;
        completion_event_ = sim_.events().schedule(
            done_at, [this] { onCompletionEvent(); });
    }
    return true;
}

Bps
FlowScheduler::currentRate(FlowId id) const
{
    auto it = flows_.find(id);
    return it == flows_.end() ? 0.0 : it->second.rate;
}

bool
FlowScheduler::isActive(FlowId id) const
{
    return flows_.find(id) != flows_.end();
}

void
FlowScheduler::setCapacity(ResourceId rid, Bps capacity)
{
    DSTRAIN_ASSERT(capacity >= 0.0, "negative capacity for resource %d",
                   rid);
    ensureResourceArrays();
    DSTRAIN_ASSERT(rid >= 0 &&
                       static_cast<std::size_t>(rid) < eff_cap_.size(),
                   "bad resource id %d", rid);
    Resource &r = topo_.resource(rid);
    const double new_eff = capacity * linkClassEfficiency(r.cls);
    r.capacity = capacity;
    if (new_eff == eff_cap_[rid])
        return;
    ++stats_.capacity_updates;

    // Fast path: with no crossing flows — or with the resource
    // strictly unsaturated under both the old and the new capacity —
    // every flow's bottleneck stays where it is, so no rate changes
    // and neither a recompute nor a log write is needed.
    const bool slack_before = !saturated(rid);
    eff_cap_[rid] = new_eff;
    const bool slack_after = new_eff > 0.0 && !saturated(rid);
    if (nflows_[rid] == 0 || (slack_before && slack_after)) {
        ++stats_.fast_capacity_updates;
        return;
    }

    settle();
    recompute();
}

bool
FlowScheduler::cancel(FlowId id, Bytes *remaining)
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return false;
    settle();
    if (remaining)
        *remaining = it->second.remaining;
    for (ResourceId rid : it->second.resources)
        nflows_[rid] -= 1;
    flows_.erase(it);
    ++stats_.cancels;
    recompute();
    return true;
}

std::size_t
FlowScheduler::cancelAll()
{
    if (flows_.empty())
        return 0;
    settle();
    const std::size_t n = flows_.size();
    for (const auto &[id, f] : flows_)
        for (ResourceId rid : f.resources)
            nflows_[rid] -= 1;
    flows_.clear();
    stats_.cancels += n;
    // One recompute over the (now empty) flow set: every previously
    // touched resource logs a rate of exactly zero, in sorted id
    // order, so the abort instant is bit-reproducible.
    recompute();
    return n;
}

bool
FlowScheduler::stalledByFault(const Flow &f) const
{
    for (ResourceId rid : f.resources)
        if (eff_cap_[rid] <= 0.0)
            return true;
    return false;
}

void
FlowScheduler::settle()
{
    const SimTime now = sim_.now();
    const SimTime dt = now - last_settle_;
    DSTRAIN_ASSERT(dt >= 0.0, "settle time went backwards");
    if (dt > 0.0) {
        for (auto &[id, f] : flows_) {
            f.remaining -= f.rate * dt;
            if (f.remaining < 0.0)
                f.remaining = 0.0;
        }
    }
    last_settle_ = now;
}

void
FlowScheduler::recompute()
{
    const SimTime now = sim_.now();
    ensureResourceArrays();
    ++stats_.recomputes;

    // --- water-filling ---------------------------------------------------
    // Residual effective capacity and crossing count per touched
    // resource, in flat arrays; crossing_ returns to all-zero when
    // every flow freezes, so no explicit clear is needed.
    unfrozen_.clear();
    active_resources_.clear();
    for (auto &[id, f] : flows_) {
        f.rate = 0.0;
        unfrozen_.push_back(&f);
        for (ResourceId rid : f.resources) {
            if (crossing_[rid]++ == 0) {
                residual_[rid] = eff_cap_[rid];
                active_resources_.push_back(rid);
            }
        }
    }

    while (!unfrozen_.empty()) {
        // Limiting increment from resources...
        double inc = std::numeric_limits<double>::max();
        for (ResourceId rid : active_resources_) {
            const int n = crossing_[rid];
            if (n > 0)
                inc = std::min(inc, residual_[rid] / n);
        }
        // ...and from per-flow caps.
        for (Flow *f : unfrozen_)
            inc = std::min(inc, f->cap - f->rate);
        DSTRAIN_ASSERT(inc >= 0.0, "negative water-filling increment");

        for (Flow *f : unfrozen_)
            f->rate += inc;
        for (ResourceId rid : active_resources_)
            residual_[rid] -= inc * crossing_[rid];

        // Freeze flows at their cap or crossing a saturated resource.
        auto frozen = [&](Flow *f) {
            if (f->rate >= f->cap * (1.0 - kSaturationFraction))
                return true;
            for (ResourceId rid : f->resources) {
                if (residual_[rid] <=
                    eff_cap_[rid] * kSaturationFraction) {
                    return true;
                }
            }
            return false;
        };
        still_.clear();
        bool any_frozen = false;
        for (Flow *f : unfrozen_) {
            if (frozen(f)) {
                any_frozen = true;
                for (ResourceId rid : f->resources)
                    crossing_[rid] -= 1;
            } else {
                still_.push_back(f);
            }
        }
        DSTRAIN_ASSERT(any_frozen || still_.empty(),
                       "water-filling failed to make progress");
        unfrozen_.swap(still_);
    }

    // --- update telemetry logs -------------------------------------------
    for (ResourceId rid : active_resources_)
        total_rate_[rid] = 0.0;
    for (const auto &[id, f] : flows_)
        for (ResourceId rid : f.resources)
            total_rate_[rid] += f.rate;

    std::sort(active_resources_.begin(), active_resources_.end());
    for (ResourceId rid : active_resources_)
        in_active_[rid] = 1;
    // Zero out resources that had traffic before but no longer do.
    for (ResourceId rid : touched_) {
        if (!in_active_[rid]) {
            topo_.resource(rid).log.setRate(now, 0.0);
            ++stats_.rate_updates;
            total_rate_[rid] = 0.0;
        }
    }
    touched_.assign(active_resources_.begin(), active_resources_.end());
    for (ResourceId rid : touched_) {
        topo_.resource(rid).log.setRate(now, total_rate_[rid]);
        ++stats_.rate_updates;
        in_active_[rid] = 0;
    }

    scheduleNextCompletion();
}

void
FlowScheduler::scheduleNextCompletion()
{
    if (completion_event_ != 0) {
        sim_.events().cancel(completion_event_);
        completion_event_ = 0;
    }
    if (flows_.empty())
        return;

    SimTime best = std::numeric_limits<SimTime>::max();
    for (const auto &[id, f] : flows_) {
        if (f.rate <= 0.0) {
            // Water-filling assigns rate 0 only to flows stranded on
            // a link faulted to zero capacity: they have no finish
            // time and resume when setCapacity() restores the link.
            DSTRAIN_ASSERT(stalledByFault(f),
                           "active flow '%s' got zero rate",
                           f.tag.c_str());
            continue;
        }
        best = std::min(best, f.remaining / f.rate);
    }
    if (best == std::numeric_limits<SimTime>::max())
        return;  // everything stalled: nothing to schedule
    completion_time_ = sim_.now() + best;
    completion_event_ = sim_.events().schedule(
        completion_time_, [this] { onCompletionEvent(); });
}

void
FlowScheduler::onCompletionEvent()
{
    completion_event_ = 0;
    settle();

    // Collect finished flows first so callbacks observe a consistent
    // scheduler state (finished flows removed, rates recomputed).
    // Reuse the member buffers but operate on moved-out locals so a
    // callback that re-enters the scheduler can't alias them.
    std::vector<Flow> finished = std::move(finished_);
    std::vector<std::function<void()>> callbacks = std::move(callbacks_);
    finished.clear();
    callbacks.clear();

    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->second.remaining <= kByteEpsilon) {
            finished.push_back(std::move(it->second));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }

    // A full recompute is needed only when a finisher frees capacity
    // on a saturated resource some surviving flow still crosses.
    bool need_full = false;
    for (const Flow &f : finished)
        for (ResourceId rid : f.resources)
            nflows_[rid] -= 1;
    for (const Flow &f : finished) {
        for (ResourceId rid : f.resources) {
            if (nflows_[rid] > 0 && saturated(rid)) {
                need_full = true;
                break;
            }
        }
        if (need_full)
            break;
    }

    if (need_full) {
        for (Flow &f : finished)
            if (f.on_complete)
                callbacks.push_back(std::move(f.on_complete));
        recompute();
    } else {
        const SimTime now = sim_.now();
        for (Flow &f : finished) {
            ++stats_.fast_finishes;
            for (ResourceId rid : f.resources) {
                total_rate_[rid] -= f.rate;
                // Snap float dust so idle resources read exactly 0.
                if (nflows_[rid] == 0 || total_rate_[rid] < 0.0)
                    total_rate_[rid] = 0.0;
                topo_.resource(rid).log.setRate(now, total_rate_[rid]);
                ++stats_.rate_updates;
            }
            if (f.on_complete)
                callbacks.push_back(std::move(f.on_complete));
        }
        scheduleNextCompletion();
    }

    for (auto &cb : callbacks)
        cb();

    // Return the buffers (and their capacity) for the next event.
    finished.clear();
    callbacks.clear();
    finished_ = std::move(finished);
    callbacks_ = std::move(callbacks);
}

void
FlowScheduler::finalizeLogs()
{
    settle();
    topo_.finalizeLogs(sim_.now());
}

} // namespace dstrain
