/**
 * @file
 * Implementation of the max-min fair flow scheduler.
 *
 * Four invariants drive the incremental paths (see DESIGN.md
 * "Performance architecture"):
 *
 *  - A new flow whose crossed resources all keep slack for its full
 *    cap (and whose only saturating resources carry no other flow)
 *    can be admitted at min(cap, min private capacity) without
 *    changing any existing rate: no resource crossed by another flow
 *    becomes saturated, so no existing flow's bottleneck moves.
 *
 *  - A finishing flow whose saturated resources carry no surviving
 *    flow can be removed without a recompute: capacity freed on an
 *    unsaturated (or now-idle) resource cannot unfreeze anyone,
 *    because every surviving flow is bottlenecked at its own cap or
 *    at a resource that stays saturated.
 *
 *  - Max-min rates of one connected component of the flow/resource
 *    sharing graph are independent of every other component: no
 *    resource couples them, so progressive filling restricted to the
 *    component walks the exact same increment sequence for its flows
 *    as the global pass does. The region solver exploits this to
 *    re-solve only the component(s) an event touches; flows outside
 *    keep their frozen rates, which by the same argument are still
 *    their global max-min rates. It also makes components of one
 *    solve independent units of work: they can be filled concurrently
 *    and committed in canonical order, bit-identical to serial.
 *
 *  - A flow's remaining-bytes trajectory is piecewise linear in its
 *    rate. Keeping (anchor, remaining) exact and settling in ONE
 *    multiply-subtract per constant-rate span — only when the rate
 *    value actually changes or the remaining is observed — is the
 *    scheduler's definition of progress. (Settling the same span
 *    piecewise would change the float result, so unchanged flows are
 *    deliberately never touched; that is also what makes per-event
 *    cost independent of the number of unaffected flows.) The stored
 *    predicted finish time, anchor + remaining / rate, changes only
 *    at those same points, which is what lets the completion index
 *    be maintained incrementally.
 *
 * Everything else falls back to a water-filling pass (global or
 * region-scoped by mode) over flat, reusable per-resource arrays.
 */

#include "net/flow_scheduler.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"
#include "util/task_pool.hh"

namespace dstrain {

namespace {

/** Completion slack: remaining bytes below this count as done. */
constexpr Bytes kByteEpsilon = 1.0;

/** Residual capacity below this fraction counts as saturated. */
constexpr double kSaturationFraction = 1e-9;

} // namespace

FlowScheduler::FlowScheduler(Simulation &sim, Topology &topo,
                             FlowSchedulerOptions opts)
    : sim_(sim), topo_(topo), mode_(opts.mode),
      verify_(opts.verify_fair_share),
      use_index_(opts.completion_index), pool_(opts.fill_pool),
      parallel_threshold_(opts.parallel_fill_threshold)
{
    ensureResourceArrays();
}

FlowScheduler::FlowScheduler(Simulation &sim, Topology &topo,
                             FlowSolverMode mode, bool verify_fair_share)
    : FlowScheduler(sim, topo,
                    FlowSchedulerOptions{mode, verify_fair_share, true,
                                         nullptr, 16})
{
}

FlowScheduler::~FlowScheduler()
{
    if (active_count_ != 0)
        warn("FlowScheduler destroyed with %zu active flows",
             active_count_);
    if (batch_depth_ != 0)
        warn("FlowScheduler destroyed with an open batch");
}

void
FlowScheduler::ensureResourceArrays()
{
    const std::size_t n = topo_.resourceCount();
    if (eff_cap_.size() == n)
        return;
    const std::size_t old = eff_cap_.size();
    eff_cap_.resize(n);
    total_rate_.resize(n, 0.0);
    nflows_.resize(n, 0);
    residual_.resize(n, 0.0);
    crossing_.resize(n, 0);
    in_active_.resize(n, 0);
    res_flows_.resize(n);
    res_mark_.resize(n, 0);
    res_comp_mark_.resize(n, 0);
    res_saturated_.resize(n, 0);
    res_local_.resize(n, 0);
    for (std::size_t i = old; i < n; ++i) {
        const Resource &r = topo_.resource(static_cast<ResourceId>(i));
        eff_cap_[i] = r.capacity * linkClassEfficiency(r.cls);
    }
}

bool
FlowScheduler::saturated(ResourceId rid) const
{
    return eff_cap_[rid] - total_rate_[rid] <=
           eff_cap_[rid] * kSaturationFraction;
}

// --- dense slot map ------------------------------------------------------

std::uint32_t
FlowScheduler::registerFlow(Flow f)
{
    std::uint32_t slot;
    if (free_slots_.empty()) {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(f));
        next_slot_.push_back(-1);
        prev_slot_.push_back(-1);
        flow_mark_.push_back(0);
        comp_mark_.push_back(0);
        index_seq_.push_back(0);
        stalled_pos_.push_back(0);
        rate_slot_.push_back(0.0);
        stalled_slot_.push_back(0);
        route_begin_.push_back(0);
        route_len_.push_back(0);
        cap_slot_.push_back(0.0);
    } else {
        slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(f);
        rate_slot_[slot] = 0.0;
        stalled_slot_[slot] = 0;
    }
    Flow &g = slots_[slot];
    cap_slot_[slot] = g.cap;
    if (route_arena_.size() + g.resources.size() >
        2 * arena_live_ + 64) {
        compactRouteArena();
    }
    route_begin_[slot] = static_cast<std::uint32_t>(route_arena_.size());
    route_len_[slot] = static_cast<std::uint32_t>(g.resources.size());
    route_arena_.insert(route_arena_.end(), g.resources.begin(),
                        g.resources.end());
    arena_live_ += g.resources.size();
    slot_of_id_[static_cast<std::size_t>(g.id - 1)] =
        static_cast<std::int32_t>(slot);

    // Append at the tail: ids are issued monotonically, so the active
    // list stays in ascending-id order.
    next_slot_[slot] = -1;
    prev_slot_[slot] = tail_slot_;
    if (tail_slot_ >= 0)
        next_slot_[static_cast<std::size_t>(tail_slot_)] =
            static_cast<std::int32_t>(slot);
    else
        head_slot_ = static_cast<std::int32_t>(slot);
    tail_slot_ = static_cast<std::int32_t>(slot);

    g.res_pos.clear();
    for (std::size_t k = 0; k < g.resources.size(); ++k) {
        auto &lst = res_flows_[g.resources[k]];
        g.res_pos.push_back(static_cast<std::uint32_t>(lst.size()));
        lst.push_back({slot, static_cast<std::uint32_t>(k)});
    }
    ++active_count_;
    return slot;
}

void
FlowScheduler::detachFlow(std::uint32_t slot)
{
    Flow &f = slots_[slot];
    for (std::size_t k = 0; k < f.resources.size(); ++k) {
        auto &lst = res_flows_[f.resources[k]];
        const std::uint32_t pos = f.res_pos[k];
        const ResFlow back = lst.back();
        lst[pos] = back;
        slots_[back.slot].res_pos[back.idx] = pos;
        lst.pop_back();
    }
    slot_of_id_[static_cast<std::size_t>(f.id - 1)] = -1;
    arena_live_ -= route_len_[slot];

    const std::int32_t prev = prev_slot_[slot];
    const std::int32_t next = next_slot_[slot];
    if (prev >= 0)
        next_slot_[static_cast<std::size_t>(prev)] = next;
    else
        head_slot_ = next;
    if (next >= 0)
        prev_slot_[static_cast<std::size_t>(next)] = prev;
    else
        tail_slot_ = prev;
    --active_count_;
}

void
FlowScheduler::releaseSlot(std::uint32_t slot)
{
    slots_[slot] = Flow();
    free_slots_.push_back(slot);
}

void
FlowScheduler::compactRouteArena()
{
    // Rewrite the arena with only the active slots' spans (walked in
    // active-list order; the order of spans is irrelevant, only each
    // span's internal order matters). Triggered when dead spans
    // outnumber live ones, so the copy cost amortizes to O(1) per
    // registration.
    std::vector<ResourceId> packed;
    packed.reserve(arena_live_);
    for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s]) {
        const std::uint32_t slot = static_cast<std::uint32_t>(s);
        const std::uint32_t at = static_cast<std::uint32_t>(packed.size());
        packed.insert(packed.end(),
                      route_arena_.begin() + route_begin_[slot],
                      route_arena_.begin() + route_begin_[slot] +
                          route_len_[slot]);
        route_begin_[slot] = at;
    }
    route_arena_ = std::move(packed);
}

// --- completion index ----------------------------------------------------

void
FlowScheduler::indexUpdate(std::uint32_t slot, SimTime key)
{
    if (!use_index_)
        return;
    index_seq_[slot] = next_index_seq_++;
    index_.push(IndexEntry{key, index_seq_[slot], slot});
    ++stats_.completion_index_updates;
}

void
FlowScheduler::skimIndex()
{
    while (!index_.empty()) {
        const IndexEntry &e = index_.top();
        if (index_seq_[e.slot] == e.seq)
            break;
        index_.pop();
    }
}

void
FlowScheduler::compactIndexIfBloated()
{
    // Rate churn leaves superseded entries in the heap (lazy
    // invalidation). Rebuild from the live entries once the stale
    // ones dominate: O(active) work amortized against the >= active
    // pushes it took to get here. The live (key, seq, slot) triples
    // are preserved exactly, so pop/peek outcomes are unchanged.
    if (index_.size() <= 2 * active_count_ + 64)
        return;
    std::vector<IndexEntry> fresh;
    fresh.reserve(active_count_);
    for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s]) {
        const std::uint32_t slot = static_cast<std::uint32_t>(s);
        if (index_seq_[slot] != 0)
            fresh.push_back(IndexEntry{slots_[slot].finish_at,
                                       index_seq_[slot], slot});
    }
    index_ = IndexHeap(IndexLater{}, std::move(fresh));
}

// --- stalled-flow parking ------------------------------------------------

void
FlowScheduler::parkStalled(std::uint32_t slot)
{
    Flow &f = slots_[slot];
    f.finish_at = kFlowNeverFinishes;
    indexRemove(slot);
    if (f.stalled)
        return;
    f.stalled = true;
    stalled_slot_[slot] = 1;
    stalled_pos_[slot] = static_cast<std::uint32_t>(stalled_.size());
    stalled_.push_back(slot);
    ++stats_.stalled_parks;
}

void
FlowScheduler::unparkStalled(std::uint32_t slot)
{
    Flow &f = slots_[slot];
    DSTRAIN_ASSERT(f.stalled, "unpark of a flow that is not stalled");
    f.stalled = false;
    stalled_slot_[slot] = 0;
    const std::uint32_t pos = stalled_pos_[slot];
    const std::uint32_t back = stalled_.back();
    stalled_[pos] = back;
    stalled_pos_[back] = pos;
    stalled_.pop_back();
}

void
FlowScheduler::unparkResource(ResourceId rid)
{
    for (const ResFlow &rf : res_flows_[rid])
        if (stalled_slot_[rf.slot])
            unparkStalled(rf.slot);
}

// --- region machinery ----------------------------------------------------

void
FlowScheduler::beginRegion()
{
    ++mark_epoch_;
    region_flows_.clear();
}

void
FlowScheduler::seedRegionFlow(std::uint32_t slot)
{
    if (slots_[slot].stalled)
        return;
    if (flow_mark_[slot] != mark_epoch_) {
        flow_mark_[slot] = mark_epoch_;
        region_flows_.push_back(slot);
    }
}

void
FlowScheduler::seedRegionResource(ResourceId rid)
{
    for (const ResFlow &rf : res_flows_[rid])
        seedRegionFlow(rf.slot);
}

void
FlowScheduler::partitionComponents()
{
    // Close the seed set over shared resources and split it into
    // connected components in one sweep. Every resource of a seeded
    // flow joins, dragging in every flow crossing it — the ripple
    // propagation: any chain of shared (potentially saturating)
    // resources is followed to the full connected component, so no
    // rate outside a component can move. Stalled flows are invisible
    // here: they hold rate zero on every link they cross, so they
    // neither bridge components nor participate in any fill until a
    // capacity restore unparks them.
    // The BFS touches every member flow's route and every discovered
    // resource's crossing list exactly once anyway, so it also
    // gathers everything the fills will need — the per-flow CSR of
    // component-local resource ids, initial crossing counts and
    // capacity images — leaving the fills free of any global-array
    // striding (see FillScratch).
    components_.clear();
    comp_ranges_.clear();
    comp_flow_res_.clear();
    comp_flow_begin_.clear();
    comp_fcap_.clear();
    comp_rids_.clear();
    comp_rid_ranges_.clear();
    comp_crossing_.clear();
    comp_rcap_.clear();
    ++comp_epoch_;
    for (std::uint32_t seed : region_flows_) {
        if (comp_mark_[seed] == comp_epoch_)
            continue;
        const std::size_t begin = components_.size();
        const std::size_t rbegin = comp_rids_.size();
        comp_ranges_.push_back(begin);
        comp_rid_ranges_.push_back(rbegin);
        comp_mark_[seed] = comp_epoch_;
        components_.push_back(seed);
        for (std::size_t i = begin; i < components_.size(); ++i) {
            const std::uint32_t slot = components_[i];
            comp_flow_begin_.push_back(
                static_cast<std::uint32_t>(comp_flow_res_.size()));
            comp_fcap_.push_back(cap_slot_[slot]);
            const ResourceId *rr = route_arena_.data() + route_begin_[slot];
            const std::uint32_t rlen = route_len_[slot];
            for (std::uint32_t ri = 0; ri < rlen; ++ri) {
                const ResourceId rid = rr[ri];
                std::uint32_t l;
                if (res_comp_mark_[rid] != comp_epoch_) {
                    res_comp_mark_[rid] = comp_epoch_;
                    l = static_cast<std::uint32_t>(comp_rids_.size() -
                                                   rbegin);
                    res_local_[rid] = l;
                    comp_rids_.push_back(rid);
                    comp_rcap_.push_back(eff_cap_[rid]);
                    // The closure puts every non-stalled crosser of
                    // rid into this component, and routes are deduped,
                    // so the list count below equals the number of
                    // component flows crossing rid.
                    int crossing = 0;
                    for (const ResFlow &rf : res_flows_[rid]) {
                        if (stalled_slot_[rf.slot])
                            continue;
                        ++crossing;
                        if (comp_mark_[rf.slot] != comp_epoch_) {
                            comp_mark_[rf.slot] = comp_epoch_;
                            components_.push_back(rf.slot);
                        }
                    }
                    comp_crossing_.push_back(crossing);
                } else {
                    l = res_local_[rid];
                }
                comp_flow_res_.push_back(l);
            }
        }
        // Components stay in BFS discovery order — deterministic for
        // a given event history, and sufficient: the fill arithmetic
        // is order-insensitive (min-reductions plus a uniform
        // increment), and every order-*observable* consumer (totals
        // summation, finisher callbacks) runs in a fixed canonical
        // order of its own (resource-list order, ascending flow ids).
    }
    comp_flow_begin_.push_back(
        static_cast<std::uint32_t>(comp_flow_res_.size()));
}

void
FlowScheduler::fillComponent(std::size_t c, FillScratch &ws,
                             std::vector<ResourceId> &out)
{
    // Progressive filling over one connected component of
    // components_. The component is closed under sharing, so each
    // resource's crossing count and residual init are self-contained
    // and the fill never reads rate state outside the component.
    //
    // Filling per component — rather than one global pass with a
    // global min — is the bit-exact definition of fair share here: a
    // global fill interleaves increment rounds across unrelated
    // components, so its floating-point sums can differ from a local
    // fill in the last bit, which would make incremental region
    // solves irreproducible. Every path (region solve, Global-mode
    // recompute, the verify oracle, a pool worker) fills per
    // component.
    //
    // The rounds run on dense component-local arrays (see
    // FillScratch) seeded from the partition CSR, so the round scans
    // hit a few KB of contiguous scratch instead of striding over
    // O(cluster) global arrays — that cache footprint, not the
    // operation count, dominated the fill at 10^4+ links. The
    // sequence of arithmetic operations is unchanged, so rates are
    // bit-identical to the global-array fill.
    const std::size_t begin = comp_ranges_[c];
    const std::size_t end = (c + 1 < comp_ranges_.size())
                                ? comp_ranges_[c + 1]
                                : components_.size();
    const std::size_t rbegin = comp_rid_ranges_[c];
    const std::size_t rend = (c + 1 < comp_rid_ranges_.size())
                                 ? comp_rid_ranges_[c + 1]
                                 : comp_rids_.size();
    const std::size_t nf = end - begin;
    const std::size_t nr = rend - rbegin;

    ws.residual.assign(comp_rcap_.begin() + rbegin,
                       comp_rcap_.begin() + rend);
    ws.crossing.assign(comp_crossing_.begin() + rbegin,
                       comp_crossing_.begin() + rend);
    ws.sat.assign(nr, 0);
    ws.live.resize(nr);
    for (std::uint32_t l = 0; l < nr; ++l)
        ws.live[l] = l;
    ws.frate.assign(nf, 0.0);
    ws.unfrozen.resize(nf);
    for (std::uint32_t fi = 0; fi < nf; ++fi)
        ws.unfrozen[fi] = fi;
    // Shared read-only views of the component's CSR slice: flow fi's
    // local resource ids and its rate cap.
    const double *fcap = comp_fcap_.data() + begin;
    const std::uint32_t *fbegin = comp_flow_begin_.data() + begin;
    const std::uint32_t *fres = comp_flow_res_.data();
    const double *rcap = comp_rcap_.data() + rbegin;

    while (!ws.unfrozen.empty()) {
        // The inc scan doubles as the live-list compaction: resources
        // whose crossing count dropped to zero in the previous round's
        // freeze pass cannot bind the increment (their residual stops
        // moving), so skipping them here and squeezing them out in the
        // same pass is bit-exact and saves a dedicated sweep per round.
        double inc = std::numeric_limits<double>::max();
        std::size_t lw = 0;
        for (std::uint32_t l : ws.live) {
            const int n = ws.crossing[l];
            if (n > 0) {
                inc = std::min(inc, ws.residual[l] / n);
                ws.live[lw++] = l;
            }
        }
        ws.live.resize(lw);
        for (std::uint32_t fi : ws.unfrozen)
            inc = std::min(inc, fcap[fi] - ws.frate[fi]);
        DSTRAIN_ASSERT(inc >= 0.0, "negative water-filling increment");

        for (std::uint32_t fi : ws.unfrozen)
            ws.frate[fi] += inc;
        for (std::uint32_t l : ws.live) {
            ws.residual[l] -= inc * ws.crossing[l];
            // One saturation test per resource per round; the per-flow
            // freeze check reads the flag instead of re-deriving it.
            // Every resource an unfrozen flow crosses has a crossing
            // count >= 1 and so is still in ws.live with a fresh flag.
            ws.sat[l] =
                ws.residual[l] <= rcap[l] * kSaturationFraction;
        }

        ws.still.clear();
        bool any_frozen = false;
        for (std::uint32_t fi : ws.unfrozen) {
            bool froze =
                ws.frate[fi] >= fcap[fi] * (1.0 - kSaturationFraction);
            if (!froze) {
                for (std::uint32_t k = fbegin[fi]; k < fbegin[fi + 1];
                     ++k) {
                    if (ws.sat[fres[k]]) {
                        froze = true;
                        break;
                    }
                }
            }
            if (froze) {
                any_frozen = true;
                for (std::uint32_t k = fbegin[fi]; k < fbegin[fi + 1];
                     ++k)
                    ws.crossing[fres[k]] -= 1;
            } else {
                ws.still.push_back(fi);
            }
        }
        DSTRAIN_ASSERT(any_frozen || ws.still.empty(),
                       "water-filling failed to make progress");
        ws.unfrozen.swap(ws.still);
        // Resources the freeze pass just orphaned (crossing now zero)
        // are squeezed out by the next round's inc scan above.
    }

    // One write per flow back into slot state (plus the dense rate
    // mirror); nothing else in the fill touched globals, so a
    // parallel fill's writes are confined to its own component.
    for (std::size_t i = begin; i < end; ++i) {
        slots_[components_[i]].rate = ws.frate[i - begin];
        rate_slot_[components_[i]] = ws.frate[i - begin];
    }
    out.insert(out.end(), comp_rids_.begin() + rbegin,
               comp_rids_.begin() + rend);
}

void
FlowScheduler::solveComponents()
{
    const std::size_t ncomp = comp_ranges_.size();
    const std::size_t nflows = components_.size();

    // Pre-fill rates, captured before any fill zeroes them: the
    // commit pass settles each changed flow over [anchor, now] at the
    // rate it actually ran.
    prev_rate_.resize(nflows);
    for (std::size_t i = 0; i < nflows; ++i)
        prev_rate_[i] = slots_[components_[i]].rate;

    if (fill_scratch_.empty())
        fill_scratch_.resize(
            pool_ ? static_cast<std::size_t>(pool_->workers()) : 1);

    const bool parallel =
        pool_ != nullptr && ncomp >= 2 && nflows >= parallel_threshold_;
    if (!parallel) {
        for (std::size_t c = 0; c < ncomp; ++c)
            fillComponent(c, fill_scratch_[0], active_resources_);
    } else {
        // Components write disjoint flow and per-resource state
        // (closure guarantees their resource sets are disjoint), so
        // the fills are race-free; each worker uses its own scratch.
        // Per-component resource lists land in comp_out_ and are
        // concatenated serially in component order, so
        // active_resources_ is identical to the serial fill's.
        stats_.parallel_component_solves += ncomp;
        comp_out_.resize(ncomp);
        pool_->parallelFor(ncomp, [&](std::size_t c, int worker) {
            comp_out_[c].clear();
            fillComponent(c,
                          fill_scratch_[static_cast<std::size_t>(worker)],
                          comp_out_[c]);
        });
        for (std::size_t c = 0; c < ncomp; ++c)
            active_resources_.insert(active_resources_.end(),
                                     comp_out_[c].begin(),
                                     comp_out_[c].end());
    }

    commitRates();
}

void
FlowScheduler::commitRates()
{
    // Serial commit in canonical component order: settle flows whose
    // rate changed (at the old rate, over the whole constant-rate
    // span — flows whose rate is unchanged are deliberately left
    // alone, see the file comment), refresh their finish times and
    // index entries, and park flows the fill left at rate zero.
    const SimTime now = sim_.now();
    for (std::size_t i = 0; i < components_.size(); ++i) {
        const std::uint32_t slot = components_[i];
        Flow &f = slots_[slot];
        const double old_rate = prev_rate_[i];
        if (f.rate != old_rate) {
            if (now > f.anchor) {
                f.remaining -= old_rate * (now - f.anchor);
                if (f.remaining < 0.0)
                    f.remaining = 0.0;
            }
            f.anchor = now;
        }
        if (f.rate <= 0.0) {
            // Water-filling assigns rate 0 only to flows stranded on
            // a link faulted to zero capacity: they have no finish
            // time and resume when setCapacity() restores the link.
            DSTRAIN_ASSERT(stalledByFault(f),
                           "active flow '%s' got zero rate",
                           f.tag.c_str());
            parkStalled(slot);
        } else if (f.rate != old_rate) {
            f.finish_at = f.anchor + f.remaining / f.rate;
            indexUpdate(slot, f.finish_at);
        }
    }
}

void
FlowScheduler::writeRegionTotals()
{
    // Per-resource totals re-summed from the crossing-flow lists of
    // the solved resources alone — O(region), not O(active flows).
    // The list order is the registration history (swap-remove on
    // detach), identical in every mode, so the float summation order
    // is canonical. The closure guarantees every non-stalled flow
    // crossing a solved resource is in the solved component; stalled
    // crossers contribute exactly 0.0, which is bit-neutral.
    const SimTime now = sim_.now();
    for (ResourceId rid : active_resources_) {
        double total = 0.0;
        for (const ResFlow &rf : res_flows_[rid])
            total += rate_slot_[rf.slot];
        total_rate_[rid] = total;
        topo_.resource(rid).log.setRate(now, total);
        ++stats_.rate_updates;
    }
}

void
FlowScheduler::solveRegion()
{
    partitionComponents();
    if (components_.empty())
        return;

    ++stats_.recomputes;
    ++stats_.region_solves;
    stats_.region_flows += components_.size();
    stats_.region_peak =
        std::max<std::uint64_t>(stats_.region_peak, components_.size());
    std::size_t bucket = 0;
    for (std::size_t n = components_.size(); n > 1; n >>= 1)
        ++bucket;
    stats_.region_hist[std::min(bucket, kRegionHistBuckets - 1)] += 1;

    active_resources_.clear();
    solveComponents();
    writeRegionTotals();
}

void
FlowScheduler::zeroIfIdle(ResourceId rid)
{
    if (nflows_[rid] != 0 || res_mark_[rid] == mark_epoch_)
        return;
    res_mark_[rid] = mark_epoch_;
    total_rate_[rid] = 0.0;
    topo_.resource(rid).log.setRate(sim_.now(), 0.0);
    ++stats_.rate_updates;
}

// --- public API ----------------------------------------------------------

FlowId
FlowScheduler::start(FlowSpec spec)
{
    DSTRAIN_ASSERT(spec.route.valid(), "flow '%s' has no route",
                   spec.tag.c_str());
    DSTRAIN_ASSERT(spec.bytes >= 0.0, "flow '%s' has negative size",
                   spec.tag.c_str());

    FlowId id = next_id_++;
    slot_of_id_.push_back(-1);
    if (spec.bytes <= kByteEpsilon) {
        // Degenerate transfer: complete via a zero-delay event so the
        // caller's state machine always advances asynchronously. The
        // flow is never registered: isActive(id) is false and
        // currentRate(id) is 0, the same as any finished flow.
        if (spec.on_complete)
            sim_.events().scheduleAfter(0.0, std::move(spec.on_complete));
        return id;
    }

    Flow f;
    f.id = id;
    f.remaining = spec.bytes;
    f.anchor = sim_.now();
    f.on_complete = std::move(spec.on_complete);
    f.tag = std::move(spec.tag);
    f.cap = spec.route.rate_cap;
    if (spec.rate_cap > 0.0)
        f.cap = std::min(f.cap, spec.rate_cap);
    DSTRAIN_ASSERT(f.cap > 0.0, "flow '%s' has zero rate cap",
                   f.tag.c_str());

    for (HalfLinkId hid : spec.route.hops) {
        ResourceId rid = topo_.halfLink(hid).resource;
        if (std::find(f.resources.begin(), f.resources.end(), rid) ==
            f.resources.end()) {
            f.resources.push_back(rid);
        }
    }
    for (ResourceId rid : spec.extra_resources) {
        if (std::find(f.resources.begin(), f.resources.end(), rid) ==
            f.resources.end()) {
            f.resources.push_back(rid);
        }
    }

    ensureResourceArrays();
    for (ResourceId rid : f.resources)
        nflows_[rid] += 1;
    const std::uint32_t slot = registerFlow(std::move(f));
    Flow &g = slots_[slot];
    if (batch_depth_ > 0) {
        // Deferred admission: the flow sits rate-less (not stalled,
        // no finish time) until the batch flush solves its region.
        ++stats_.batched_events;
        batch_start_slots_.push_back(slot);
        batch_need_solve_ = true;
        return id;
    }
    // Verify mode forces the full solve: the oracle is a from-scratch
    // component fill, and a fast-path rate — assigned directly rather
    // than summed through fill increments — matches it mathematically
    // but not always in the last bit. Disabling the fast paths keeps
    // the invariant "stored rate == fresh fill of its component"
    // exact, so the oracle flags real closure bugs, not float dust.
    if (!verify_ && tryFastStart(g)) {
        ++stats_.fast_starts;
        indexUpdate(slot, g.finish_at);
        maybeVerify();
        return id;
    }
    if (mode_ == FlowSolverMode::Global) {
        recompute();
    } else {
        beginRegion();
        seedRegionFlow(slot);
        solveRegion();
        scheduleNextCompletion();
    }
    maybeVerify();
    return id;
}

bool
FlowScheduler::tryFastStart(Flow &f)
{
    // Pass 1: the admitted rate — the cap, further limited by
    // resources this flow has to itself (which it may saturate).
    double rate = f.cap;
    for (ResourceId rid : f.resources) {
        if (nflows_[rid] == 1)  // counting this flow
            rate = std::min(rate, eff_cap_[rid]);
    }
    // A private resource faulted to zero capacity admits nothing:
    // fall through to water-filling, which parks the flow at rate 0.
    if (rate <= 0.0)
        return false;
    // Pass 2: every shared resource must keep slack for the full
    // admitted rate, i.e. stay strictly unsaturated afterwards.
    for (ResourceId rid : f.resources) {
        if (nflows_[rid] == 1)
            continue;
        const double slack_after =
            eff_cap_[rid] - total_rate_[rid] - rate;
        if (slack_after <= eff_cap_[rid] * kSaturationFraction)
            return false;
    }

    const SimTime now = sim_.now();
    f.rate = rate;
    for (ResourceId rid : f.resources) {
        total_rate_[rid] += rate;
        topo_.resource(rid).log.setRate(now, total_rate_[rid]);
        ++stats_.rate_updates;
        if (mode_ == FlowSolverMode::Global) {
            // The global pass zeroes stale logs via the sorted
            // touched_ set; the region solver zeroes at removal time
            // instead and never reads it.
            auto it =
                std::lower_bound(touched_.begin(), touched_.end(), rid);
            if (it == touched_.end() || *it != rid)
                touched_.insert(it, rid);
        }
    }

    const SimTime done_at = now + f.remaining / f.rate;
    f.finish_at = done_at;
    if (completion_event_ == 0) {
        completion_time_ = done_at;
        completion_event_ = sim_.events().schedule(
            done_at, [this] { onCompletionEvent(); });
    } else if (done_at < completion_time_) {
        completion_time_ = done_at;
        completion_event_ =
            sim_.events().reschedule(completion_event_, done_at);
    }
    return true;
}

Bps
FlowScheduler::currentRate(FlowId id) const
{
    const std::int32_t slot = slotOf(id);
    return slot < 0 ? 0.0 : slots_[static_cast<std::size_t>(slot)].rate;
}

bool
FlowScheduler::isActive(FlowId id) const
{
    return slotOf(id) >= 0;
}

void
FlowScheduler::setCapacity(ResourceId rid, Bps capacity)
{
    DSTRAIN_ASSERT(capacity >= 0.0, "negative capacity for resource %d",
                   rid);
    ensureResourceArrays();
    DSTRAIN_ASSERT(rid >= 0 &&
                       static_cast<std::size_t>(rid) < eff_cap_.size(),
                   "bad resource id %d", rid);
    Resource &r = topo_.resource(rid);
    const double new_eff = capacity * linkClassEfficiency(r.cls);
    r.capacity = capacity;
    if (new_eff == eff_cap_[rid])
        return;
    ++stats_.capacity_updates;

    const bool was_zero = eff_cap_[rid] <= 0.0;
    const bool slack_before = !saturated(rid);
    eff_cap_[rid] = new_eff;
    const bool slack_after = new_eff > 0.0 && !saturated(rid);
    // A restore from zero wakes the parked crossers: they rejoin the
    // (possibly deferred) solve below, which re-parks any of them
    // still blocked on another downed link.
    if (was_zero && new_eff > 0.0)
        unparkResource(rid);

    if (batch_depth_ > 0) {
        // Deferred: match setCapacities() batch semantics — rates are
        // pre-batch (stale), so every changed resource with flows
        // seeds the flush region, and a failed fast check anywhere
        // forces the flush solve.
        ++stats_.batched_events;
        if (nflows_[rid] > 0) {
            batch_dirty_.push_back(rid);
            if (!(slack_before && slack_after))
                batch_need_solve_ = true;
        }
        return;
    }

    // Fast path: with no crossing flows — or with the resource
    // strictly unsaturated under both the old and the new capacity —
    // every flow's bottleneck stays where it is, so no rate changes
    // and neither a recompute nor a log write is needed.
    if (nflows_[rid] == 0 || (slack_before && slack_after)) {
        ++stats_.fast_capacity_updates;
        return;
    }

    if (mode_ == FlowSolverMode::Global) {
        recompute();
    } else {
        beginRegion();
        seedRegionResource(rid);
        solveRegion();
        scheduleNextCompletion();
    }
    maybeVerify();
}

void
FlowScheduler::setCapacities(
    const std::vector<std::pair<ResourceId, Bps>> &updates)
{
    ensureResourceArrays();
    bool any_change = false;
    bool need_solve = false;
    cap_dirty_.clear();
    for (const auto &[rid, capacity] : updates) {
        DSTRAIN_ASSERT(capacity >= 0.0,
                       "negative capacity for resource %d", rid);
        DSTRAIN_ASSERT(rid >= 0 && static_cast<std::size_t>(rid) <
                                       eff_cap_.size(),
                       "bad resource id %d", rid);
        Resource &r = topo_.resource(rid);
        const double new_eff = capacity * linkClassEfficiency(r.cls);
        r.capacity = capacity;
        if (new_eff == eff_cap_[rid])
            continue;
        any_change = true;
        const bool was_zero = eff_cap_[rid] <= 0.0;
        const bool slack_before = !saturated(rid);
        eff_cap_[rid] = new_eff;
        const bool slack_after = new_eff > 0.0 && !saturated(rid);
        if (was_zero && new_eff > 0.0)
            unparkResource(rid);
        if (nflows_[rid] == 0)
            continue;
        // Every changed resource with flows seeds the solve region
        // (not just the ones failing the fast check): the batch is
        // solved against pre-batch rates, so a jointly affected
        // resource must not be skipped on a stale individual check.
        cap_dirty_.push_back(rid);
        if (!(slack_before && slack_after))
            need_solve = true;
    }
    if (!any_change)
        return;
    ++stats_.capacity_updates;  // the whole batch counts once

    if (batch_depth_ > 0) {
        // Fold into the open storm batch.
        ++stats_.batched_events;
        batch_dirty_.insert(batch_dirty_.end(), cap_dirty_.begin(),
                            cap_dirty_.end());
        if (need_solve)
            batch_need_solve_ = true;
        return;
    }

    if (!need_solve) {
        ++stats_.fast_capacity_updates;
        maybeVerify();
        return;
    }

    if (mode_ == FlowSolverMode::Global) {
        recompute();
    } else {
        beginRegion();
        for (ResourceId rid : cap_dirty_)
            seedRegionResource(rid);
        solveRegion();
        scheduleNextCompletion();
    }
    maybeVerify();
}

void
FlowScheduler::beginBatch()
{
    ++batch_depth_;
}

void
FlowScheduler::endBatch()
{
    DSTRAIN_ASSERT(batch_depth_ > 0, "endBatch without beginBatch");
    if (--batch_depth_ > 0)
        return;
    flushBatch();
}

void
FlowScheduler::flushBatch()
{
    if (batch_start_slots_.empty() && batch_dirty_.empty()) {
        batch_need_solve_ = false;
        maybeVerify();
        return;
    }
    if (!batch_need_solve_) {
        // Capacity-only batch where every entry passed its fast
        // check: no rate can have moved.
        ++stats_.fast_capacity_updates;
        batch_dirty_.clear();
        maybeVerify();
        return;
    }
    // Seed order feeds component *enumeration* order only; the fill
    // and every observable consumer are enumeration-order-invariant,
    // so dedup by sort is safe and keeps the closure walk linear.
    std::sort(batch_dirty_.begin(), batch_dirty_.end());
    batch_dirty_.erase(
        std::unique(batch_dirty_.begin(), batch_dirty_.end()),
        batch_dirty_.end());

    if (mode_ == FlowSolverMode::Global) {
        batch_start_slots_.clear();
        batch_dirty_.clear();
        batch_need_solve_ = false;
        recompute();
    } else {
        beginRegion();
        for (std::uint32_t slot : batch_start_slots_)
            seedRegionFlow(slot);
        for (ResourceId rid : batch_dirty_)
            seedRegionResource(rid);
        batch_start_slots_.clear();
        batch_dirty_.clear();
        batch_need_solve_ = false;
        solveRegion();
        scheduleNextCompletion();
    }
    maybeVerify();
}

bool
FlowScheduler::cancel(FlowId id, Bytes *remaining)
{
    const std::int32_t s = slotOf(id);
    if (s < 0)
        return false;
    const std::uint32_t slot = static_cast<std::uint32_t>(s);
    Flow &f = slots_[slot];
    settleFlow(f, sim_.now());  // observation point for `remaining`
    if (remaining)
        *remaining = f.remaining;
    for (ResourceId rid : f.resources)
        nflows_[rid] -= 1;
    if (f.stalled)
        unparkStalled(slot);
    indexRemove(slot);
    detachFlow(slot);
    Flow removed = std::move(slots_[slot]);
    releaseSlot(slot);
    ++stats_.cancels;

    if (batch_depth_ > 0) {
        ++stats_.batched_events;
        // A start deferred in this same batch leaves no seed behind.
        batch_start_slots_.erase(std::remove(batch_start_slots_.begin(),
                                             batch_start_slots_.end(),
                                             slot),
                                 batch_start_slots_.end());
        ++mark_epoch_;  // fresh epoch for zeroIfIdle deduplication
        for (ResourceId rid : removed.resources)
            zeroIfIdle(rid);
        for (ResourceId rid : removed.resources)
            if (nflows_[rid] > 0)
                batch_dirty_.push_back(rid);
        batch_need_solve_ = true;
        return true;
    }

    if (mode_ == FlowSolverMode::Global) {
        recompute();
    } else {
        beginRegion();
        for (ResourceId rid : removed.resources)
            zeroIfIdle(rid);
        // zeroIfIdle shares the mark epoch; a resource marked idle
        // has no flows, so it can never be (re)seeded anyway.
        for (ResourceId rid : removed.resources)
            seedRegionResource(rid);
        solveRegion();
        scheduleNextCompletion();
    }
    maybeVerify();
    return true;
}

std::size_t
FlowScheduler::cancelAll()
{
    DSTRAIN_ASSERT(batch_depth_ == 0, "cancelAll inside a batch");
    if (active_count_ == 0)
        return 0;
    const SimTime now = sim_.now();
    const std::size_t n = active_count_;
    // Terminal observation point: make every flow's remaining exact.
    for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s])
        settleFlow(slots_[static_cast<std::size_t>(s)], now);
    if (mode_ == FlowSolverMode::Global) {
        for (std::int32_t s = head_slot_; s >= 0;) {
            const std::uint32_t slot = static_cast<std::uint32_t>(s);
            s = next_slot_[slot];
            for (ResourceId rid : slots_[slot].resources)
                nflows_[rid] -= 1;
            indexRemove(slot);
            detachFlow(slot);
            releaseSlot(slot);
        }
        stats_.cancels += n;
        stalled_.clear();
        // One recompute over the (now empty) flow set: every
        // previously touched resource logs a rate of exactly zero, so
        // the abort instant is bit-reproducible.
        recompute();
    } else {
        beginRegion();  // epoch for zeroIfIdle deduplication
        for (std::int32_t s = head_slot_; s >= 0;) {
            const std::uint32_t slot = static_cast<std::uint32_t>(s);
            s = next_slot_[slot];
            for (ResourceId rid : slots_[slot].resources)
                nflows_[rid] -= 1;
            indexRemove(slot);
            detachFlow(slot);
            Flow removed = std::move(slots_[slot]);
            releaseSlot(slot);
            for (ResourceId rid : removed.resources)
                zeroIfIdle(rid);
        }
        stats_.cancels += n;
        stalled_.clear();
        scheduleNextCompletion();  // cancels the pending event
    }
    maybeVerify();
    return n;
}

bool
FlowScheduler::stalledByFault(const Flow &f) const
{
    for (ResourceId rid : f.resources)
        if (eff_cap_[rid] <= 0.0)
            return true;
    return false;
}

void
FlowScheduler::recompute()
{
    const SimTime now = sim_.now();
    ensureResourceArrays();
    ++stats_.recomputes;

    // --- water-filling ---------------------------------------------------
    // Seed every active non-stalled flow, split into connected
    // components, and fill each component independently. Filling per
    // component is the bit-exact definition of fair share (see
    // fillComponent()): it makes Global mode, the incremental region
    // solver, and the verify oracle produce identical rates down to
    // the last bit.
    region_flows_.clear();
    for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s]) {
        if (!slots_[static_cast<std::size_t>(s)].stalled)
            region_flows_.push_back(static_cast<std::uint32_t>(s));
    }
    partitionComponents();

    active_resources_.clear();
    solveComponents();

    // --- update telemetry logs -------------------------------------------
    for (ResourceId rid : active_resources_) {
        double total = 0.0;
        for (const ResFlow &rf : res_flows_[rid])
            total += rate_slot_[rf.slot];
        total_rate_[rid] = total;
    }

    std::sort(active_resources_.begin(), active_resources_.end());
    for (ResourceId rid : active_resources_)
        in_active_[rid] = 1;
    // Zero out resources that had traffic before but no longer do.
    for (ResourceId rid : touched_) {
        if (!in_active_[rid]) {
            topo_.resource(rid).log.setRate(now, 0.0);
            ++stats_.rate_updates;
            total_rate_[rid] = 0.0;
        }
    }
    touched_.assign(active_resources_.begin(), active_resources_.end());
    for (ResourceId rid : touched_) {
        topo_.resource(rid).log.setRate(now, total_rate_[rid]);
        ++stats_.rate_updates;
        in_active_[rid] = 0;
    }

    scheduleNextCompletion();
}

void
FlowScheduler::scheduleNextCompletion()
{
    SimTime best = kFlowNeverFinishes;
    if (active_count_ > 0) {
        if (use_index_) {
            // The index serves the minimum directly; no walk over the
            // active list. Stored finish times and index keys are the
            // same doubles, so the scheduled time is bit-identical to
            // the legacy scan's.
            ++stats_.completion_scans_avoided;
            compactIndexIfBloated();
            skimIndex();
            if (!index_.empty())
                best = index_.top().key;
        } else {
            for (std::int32_t s = head_slot_; s >= 0;
                 s = next_slot_[s]) {
                const Flow &f = slots_[static_cast<std::size_t>(s)];
                if (!f.stalled && f.finish_at < best)
                    best = f.finish_at;
            }
        }
    }
    if (best == kFlowNeverFinishes) {
        // Nothing running (everything finished or stalled).
        if (completion_event_ != 0) {
            sim_.events().cancel(completion_event_);
            completion_event_ = 0;
        }
        return;
    }
    completion_time_ = best;
    // Always re-stamp the event (fresh FIFO sequence), exactly as the
    // historical cancel+schedule pair did on every solve: same-time
    // tie order against other subsystems' events is part of the
    // pinned deterministic behavior.
    if (completion_event_ != 0)
        completion_event_ =
            sim_.events().reschedule(completion_event_, best);
    else
        completion_event_ = sim_.events().schedule(
            best, [this] { onCompletionEvent(); });
}

void
FlowScheduler::onCompletionEvent()
{
    completion_event_ = 0;
    const SimTime now = sim_.now();

    // Collect finishers: flows whose predicted finish time has
    // arrived. Both paths produce the same set in ascending-id order
    // (the heap pops are sorted; the scan walks the ascending active
    // list) — the canonical completion-callback order.
    finisher_slots_.clear();
    if (use_index_) {
        while (!index_.empty() && index_.top().key <= now) {
            const IndexEntry e = index_.top();
            index_.pop();
            if (index_seq_[e.slot] == e.seq) {
                index_seq_[e.slot] = 0;
                finisher_slots_.push_back(e.slot);
            }
        }
        std::sort(finisher_slots_.begin(), finisher_slots_.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      return slots_[a].id < slots_[b].id;
                  });
    } else {
        for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s]) {
            const std::uint32_t slot = static_cast<std::uint32_t>(s);
            const Flow &f = slots_[slot];
            if (!f.stalled && f.finish_at <= now)
                finisher_slots_.push_back(slot);
        }
    }

    // Reuse the member buffers but operate on moved-out locals so a
    // callback that re-enters the scheduler can't alias them.
    std::vector<Flow> finished = std::move(finished_);
    std::vector<std::function<void()>> callbacks = std::move(callbacks_);
    finished.clear();
    callbacks.clear();

    for (std::uint32_t slot : finisher_slots_) {
        Flow &f = slots_[slot];
        settleFlow(f, now);
        if (f.remaining > kByteEpsilon) {
            // Float dust: the exact settle says the flow is not quite
            // done (predicted finish rounded early). Re-predict and
            // let it fire again; never finish a flow with real bytes
            // left.
            f.finish_at = f.anchor + f.remaining / f.rate;
            indexUpdate(slot, f.finish_at);
            continue;
        }
        detachFlow(slot);
        finished.push_back(std::move(slots_[slot]));
        releaseSlot(slot);
    }

    if (finished.empty()) {
        // Dust-only event: every candidate was re-queued.
        scheduleNextCompletion();
        maybeVerify();
        finished_ = std::move(finished);
        callbacks_ = std::move(callbacks);
        return;
    }

    // A full recompute is needed only when a finisher frees capacity
    // on a saturated resource some surviving flow still crosses.
    // Verify mode always takes it (see the fast-start gate in
    // start()): survivors' rates were filled with the finisher as a
    // participant, and a fresh fill without it walks a different
    // increment sequence — equal mathematically, not always bitwise.
    bool need_full = verify_;
    for (const Flow &f : finished)
        for (ResourceId rid : f.resources)
            nflows_[rid] -= 1;
    for (const Flow &f : finished) {
        for (ResourceId rid : f.resources) {
            if (nflows_[rid] > 0 && saturated(rid)) {
                need_full = true;
                break;
            }
        }
        if (need_full)
            break;
    }

    if (need_full) {
        for (Flow &f : finished)
            if (f.on_complete)
                callbacks.push_back(std::move(f.on_complete));
        if (mode_ == FlowSolverMode::Global) {
            recompute();
        } else {
            beginRegion();
            for (const Flow &f : finished)
                for (ResourceId rid : f.resources)
                    zeroIfIdle(rid);
            for (const Flow &f : finished)
                for (ResourceId rid : f.resources)
                    seedRegionResource(rid);
            solveRegion();
            scheduleNextCompletion();
        }
    } else {
        for (Flow &f : finished) {
            ++stats_.fast_finishes;
            for (ResourceId rid : f.resources) {
                total_rate_[rid] -= f.rate;
                // Snap float dust so idle resources read exactly 0.
                if (nflows_[rid] == 0 || total_rate_[rid] < 0.0)
                    total_rate_[rid] = 0.0;
                topo_.resource(rid).log.setRate(now, total_rate_[rid]);
                ++stats_.rate_updates;
            }
            if (f.on_complete)
                callbacks.push_back(std::move(f.on_complete));
        }
        scheduleNextCompletion();
    }
    maybeVerify();

    for (auto &cb : callbacks)
        cb();

    // Return the buffers (and their capacity) for the next event.
    finished.clear();
    callbacks.clear();
    finished_ = std::move(finished);
    callbacks_ = std::move(callbacks);
}

void
FlowScheduler::oracleFillComponent(std::size_t begin, std::size_t end)
{
    // fillComponent(), writing scratch rates: identical arithmetic,
    // but into oracle_rate_ instead of Flow::rate so flow state, logs
    // and totals stay untouched.
    oracle_unfrozen_.clear();
    comp_resources_.clear();
    for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t slot = components_[i];
        oracle_rate_[slot] = 0.0;
        oracle_unfrozen_.push_back(slot);
        for (ResourceId rid : slots_[slot].resources) {
            if (crossing_[rid]++ == 0) {
                residual_[rid] = eff_cap_[rid];
                comp_resources_.push_back(rid);
            }
        }
    }

    while (!oracle_unfrozen_.empty()) {
        double inc = std::numeric_limits<double>::max();
        for (ResourceId rid : comp_resources_) {
            const int n = crossing_[rid];
            if (n > 0)
                inc = std::min(inc, residual_[rid] / n);
        }
        for (std::uint32_t slot : oracle_unfrozen_)
            inc = std::min(inc, slots_[slot].cap - oracle_rate_[slot]);
        DSTRAIN_ASSERT(inc >= 0.0, "negative water-filling increment");

        for (std::uint32_t slot : oracle_unfrozen_)
            oracle_rate_[slot] += inc;
        for (ResourceId rid : comp_resources_) {
            residual_[rid] -= inc * crossing_[rid];
            res_saturated_[rid] = residual_[rid] <=
                                  eff_cap_[rid] * kSaturationFraction;
        }

        oracle_still_.clear();
        bool any_frozen = false;
        for (std::uint32_t slot : oracle_unfrozen_) {
            const Flow &f = slots_[slot];
            bool froze =
                oracle_rate_[slot] >= f.cap * (1.0 - kSaturationFraction);
            if (!froze) {
                for (ResourceId rid : f.resources) {
                    if (res_saturated_[rid]) {
                        froze = true;
                        break;
                    }
                }
            }
            if (froze) {
                any_frozen = true;
                for (ResourceId rid : f.resources)
                    crossing_[rid] -= 1;
            } else {
                oracle_still_.push_back(slot);
            }
        }
        DSTRAIN_ASSERT(any_frozen || oracle_still_.empty(),
                       "water-filling failed to make progress");
        oracle_unfrozen_.swap(oracle_still_);

        std::size_t w = 0;
        for (ResourceId rid : comp_resources_)
            if (crossing_[rid] > 0)
                comp_resources_[w++] = rid;
        comp_resources_.resize(w);
    }
}

void
FlowScheduler::maybeVerify()
{
    if (!verify_ || batch_depth_ > 0)
        return;
    ++stats_.verified_solves;

    // The oracle: a from-scratch per-component fill over every active
    // non-stalled flow — the same definition of fair share
    // recompute() computes — into scratch rates. crossing_/residual_
    // are safe to reuse: every solve leaves crossing_ at zero.
    oracle_rate_.resize(slots_.size());
    region_flows_.clear();
    for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s]) {
        if (!slots_[static_cast<std::size_t>(s)].stalled)
            region_flows_.push_back(static_cast<std::uint32_t>(s));
    }
    partitionComponents();
    for (std::size_t c = 0; c < comp_ranges_.size(); ++c) {
        const std::size_t end = (c + 1 < comp_ranges_.size())
                                    ? comp_ranges_[c + 1]
                                    : components_.size();
        oracleFillComponent(comp_ranges_[c], end);
    }

    SimTime best = kFlowNeverFinishes;
    std::size_t nstalled = 0;
    for (std::int32_t s = head_slot_; s >= 0; s = next_slot_[s]) {
        const std::uint32_t slot = static_cast<std::uint32_t>(s);
        const Flow &f = slots_[slot];
        if (f.stalled) {
            ++nstalled;
            if (f.rate != 0.0 || !stalledByFault(f))
                fatal("verify-fair-share: flow '%s' (id %llu) parked "
                      "while not fault-stalled at t=%g",
                      f.tag.c_str(),
                      static_cast<unsigned long long>(f.id), sim_.now());
            continue;
        }
        if (oracle_rate_[slot] != f.rate) {
            fatal("verify-fair-share: flow '%s' (id %llu) rate %a "
                  "diverged from the oracle's %a at t=%g",
                  f.tag.c_str(),
                  static_cast<unsigned long long>(f.id), f.rate,
                  oracle_rate_[slot], sim_.now());
        }
        // The stored finish time must be the exact function of the
        // stored (anchor, remaining, rate) triple...
        const SimTime expect = f.anchor + f.remaining / f.rate;
        if (f.finish_at != expect) {
            fatal("verify-fair-share: flow '%s' (id %llu) finish %a "
                  "!= anchor+remaining/rate %a at t=%g",
                  f.tag.c_str(),
                  static_cast<unsigned long long>(f.id), f.finish_at,
                  expect, sim_.now());
        }
        if (use_index_ && index_seq_[slot] == 0)
            fatal("verify-fair-share: flow '%s' (id %llu) missing "
                  "from the completion index at t=%g",
                  f.tag.c_str(),
                  static_cast<unsigned long long>(f.id), sim_.now());
        if (f.finish_at < best)
            best = f.finish_at;
    }
    if (nstalled != stalled_.size())
        fatal("verify-fair-share: stalled list holds %zu flows but "
              "%zu active flows are parked at t=%g",
              stalled_.size(), nstalled, sim_.now());

    // ... and the scheduled completion event (fed by the index or the
    // scan — same stored values) must sit at the minimum of them.
    if (best == kFlowNeverFinishes) {
        if (completion_event_ != 0)
            fatal("verify-fair-share: completion event pending with "
                  "no running flow at t=%g", sim_.now());
    } else {
        if (completion_event_ == 0 || completion_time_ != best)
            fatal("verify-fair-share: completion scheduled at %a, "
                  "stored finish times say %a at t=%g",
                  completion_time_, best, sim_.now());
        if (use_index_) {
            skimIndex();
            if (index_.empty() || index_.top().key != best)
                fatal("verify-fair-share: completion index min %a != "
                      "scan min %a at t=%g",
                      index_.empty() ? kFlowNeverFinishes
                                     : index_.top().key,
                      best, sim_.now());
        }
    }
}

void
FlowScheduler::finalizeLogs()
{
    topo_.finalizeLogs(sim_.now());
}

} // namespace dstrain
