/**
 * @file
 * Implementation of the max-min fair flow scheduler.
 */

#include "net/flow_scheduler.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace dstrain {

namespace {

/** Completion slack: remaining bytes below this count as done. */
constexpr Bytes kByteEpsilon = 1.0;

/** Residual capacity below this fraction counts as saturated. */
constexpr double kSaturationFraction = 1e-9;

} // namespace

FlowScheduler::FlowScheduler(Simulation &sim, Topology &topo)
    : sim_(sim), topo_(topo)
{
}

FlowScheduler::~FlowScheduler()
{
    if (!flows_.empty())
        warn("FlowScheduler destroyed with %zu active flows",
             flows_.size());
}

FlowId
FlowScheduler::start(FlowSpec spec)
{
    DSTRAIN_ASSERT(spec.route.valid(), "flow '%s' has no route",
                   spec.tag.c_str());
    DSTRAIN_ASSERT(spec.bytes >= 0.0, "flow '%s' has negative size",
                   spec.tag.c_str());

    FlowId id = next_id_++;
    if (spec.bytes <= kByteEpsilon) {
        // Degenerate transfer: complete via a zero-delay event so the
        // caller's state machine always advances asynchronously.
        if (spec.on_complete)
            sim_.events().scheduleAfter(0.0, std::move(spec.on_complete));
        return id;
    }

    Flow f;
    f.id = id;
    f.remaining = spec.bytes;
    f.on_complete = std::move(spec.on_complete);
    f.tag = std::move(spec.tag);
    f.cap = spec.route.rate_cap;
    if (spec.rate_cap > 0.0)
        f.cap = std::min(f.cap, spec.rate_cap);
    DSTRAIN_ASSERT(f.cap > 0.0, "flow '%s' has zero rate cap",
                   f.tag.c_str());

    for (HalfLinkId hid : spec.route.hops) {
        ResourceId rid = topo_.halfLink(hid).resource;
        if (std::find(f.resources.begin(), f.resources.end(), rid) ==
            f.resources.end()) {
            f.resources.push_back(rid);
        }
    }
    for (ResourceId rid : spec.extra_resources) {
        if (std::find(f.resources.begin(), f.resources.end(), rid) ==
            f.resources.end()) {
            f.resources.push_back(rid);
        }
    }

    settle();
    flows_.emplace(id, std::move(f));
    recompute();
    return id;
}

Bps
FlowScheduler::currentRate(FlowId id) const
{
    auto it = flows_.find(id);
    return it == flows_.end() ? 0.0 : it->second.rate;
}

void
FlowScheduler::settle()
{
    const SimTime now = sim_.now();
    const SimTime dt = now - last_settle_;
    DSTRAIN_ASSERT(dt >= 0.0, "settle time went backwards");
    if (dt > 0.0) {
        for (auto &[id, f] : flows_) {
            f.remaining -= f.rate * dt;
            if (f.remaining < 0.0)
                f.remaining = 0.0;
        }
    }
    last_settle_ = now;
}

void
FlowScheduler::recompute()
{
    const SimTime now = sim_.now();

    // --- water-filling ---------------------------------------------------
    // residual effective capacity per touched resource
    std::unordered_map<ResourceId, double> residual;
    std::unordered_map<ResourceId, int> crossing;
    std::vector<Flow *> unfrozen;
    unfrozen.reserve(flows_.size());
    for (auto &[id, f] : flows_) {
        f.rate = 0.0;
        unfrozen.push_back(&f);
        for (ResourceId rid : f.resources) {
            const Resource &r = topo_.resource(rid);
            residual.emplace(rid,
                             r.capacity * linkClassEfficiency(r.cls));
            crossing[rid] += 1;
        }
    }

    while (!unfrozen.empty()) {
        // Limiting increment from resources...
        double inc = std::numeric_limits<double>::max();
        for (const auto &[rid, res_left] : residual) {
            int n = crossing[rid];
            if (n > 0)
                inc = std::min(inc, res_left / n);
        }
        // ...and from per-flow caps.
        for (Flow *f : unfrozen)
            inc = std::min(inc, f->cap - f->rate);
        DSTRAIN_ASSERT(inc >= 0.0, "negative water-filling increment");

        for (Flow *f : unfrozen)
            f->rate += inc;
        for (auto &[rid, res_left] : residual)
            res_left -= inc * crossing[rid];

        // Freeze flows at their cap or crossing a saturated resource.
        auto frozen = [&](Flow *f) {
            if (f->rate >= f->cap * (1.0 - kSaturationFraction))
                return true;
            for (ResourceId rid : f->resources) {
                const Resource &r = topo_.resource(rid);
                double eff = r.capacity * linkClassEfficiency(r.cls);
                if (residual[rid] <= eff * kSaturationFraction)
                    return true;
            }
            return false;
        };
        std::vector<Flow *> still;
        still.reserve(unfrozen.size());
        bool any_frozen = false;
        for (Flow *f : unfrozen) {
            if (frozen(f)) {
                any_frozen = true;
                for (ResourceId rid : f->resources)
                    crossing[rid] -= 1;
            } else {
                still.push_back(f);
            }
        }
        DSTRAIN_ASSERT(any_frozen || still.empty(),
                       "water-filling failed to make progress");
        unfrozen.swap(still);
    }

    // --- update telemetry logs -------------------------------------------
    std::unordered_map<ResourceId, double> totals;
    for (const auto &[id, f] : flows_)
        for (ResourceId rid : f.resources)
            totals[rid] += f.rate;

    // Zero out resources that had traffic before but no longer do.
    for (ResourceId rid : touched_) {
        if (totals.find(rid) == totals.end())
            topo_.resource(rid).log.setRate(now, 0.0);
    }
    touched_.clear();
    for (const auto &[rid, total] : totals) {
        topo_.resource(rid).log.setRate(now, total);
        touched_.push_back(rid);
    }
    std::sort(touched_.begin(), touched_.end());

    scheduleNextCompletion();
}

void
FlowScheduler::scheduleNextCompletion()
{
    if (completion_event_ != 0) {
        sim_.events().cancel(completion_event_);
        completion_event_ = 0;
    }
    if (flows_.empty())
        return;

    SimTime best = std::numeric_limits<SimTime>::max();
    for (const auto &[id, f] : flows_) {
        DSTRAIN_ASSERT(f.rate > 0.0, "active flow '%s' got zero rate",
                       f.tag.c_str());
        best = std::min(best, f.remaining / f.rate);
    }
    completion_event_ = sim_.events().scheduleAfter(
        best, [this] { onCompletionEvent(); });
}

void
FlowScheduler::onCompletionEvent()
{
    completion_event_ = 0;
    settle();

    // Collect finished flows first so callbacks observe a consistent
    // scheduler state (finished flows removed, rates recomputed).
    std::vector<std::function<void()>> callbacks;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->second.remaining <= kByteEpsilon) {
            if (it->second.on_complete)
                callbacks.push_back(std::move(it->second.on_complete));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }
    recompute();
    for (auto &cb : callbacks)
        cb();
}

void
FlowScheduler::finalizeLogs()
{
    settle();
    topo_.finalizeLogs(sim_.now());
}

} // namespace dstrain
