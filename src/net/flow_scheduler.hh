/**
 * @file
 * Max-min fair-share flow scheduler (progressive filling).
 *
 * All active flows share resource capacities fairly: rates are
 * computed by water-filling — every flow's rate rises uniformly until
 * it hits its own cap or saturates a resource, at which point it
 * freezes; the rest keep rising. Rates are recomputed whenever the
 * flow set changes and completion events are scheduled on the DES.
 *
 * Resource capacities are de-rated by the per-class protocol
 * efficiency (linkClassEfficiency); per-flow caps additionally carry
 * the route's SerDes degradation, so the stress tests of paper
 * Sec. III-C reproduce directly from this scheduler.
 *
 * Performance: the water-filling pass works on flat, reusable
 * per-resource scratch arrays indexed by ResourceId (no hashing, no
 * per-recompute allocation once warm), and flow arrivals/departures
 * that touch only unsaturated resources take an O(route length)
 * incremental path that skips the full recompute entirely (see
 * DESIGN.md "Performance architecture" for the invariant).
 */

#ifndef DSTRAIN_NET_FLOW_SCHEDULER_HH
#define DSTRAIN_NET_FLOW_SCHEDULER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hw/topology.hh"
#include "net/flow.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace dstrain {

/**
 * The fluid-model network scheduler.
 *
 * One instance per experiment; it mutates resource rate logs in the
 * topology as flow rates change.
 */
class FlowScheduler
{
  public:
    /** Scheduler work counters (for the micro-benchmarks and tests). */
    struct Stats {
        std::uint64_t recomputes = 0;     ///< full water-filling passes
        std::uint64_t fast_starts = 0;    ///< starts admitted incrementally
        std::uint64_t fast_finishes = 0;  ///< completions handled incrementally
        std::uint64_t rate_updates = 0;   ///< per-resource rate notifications
        std::uint64_t capacity_updates = 0;  ///< setCapacity() effective calls
        std::uint64_t fast_capacity_updates = 0;  ///< ... without a recompute
        std::uint64_t cancels = 0;        ///< flows removed via cancel()
    };

    /** @param sim the simulation context; @param topo the network. */
    FlowScheduler(Simulation &sim, Topology &topo);

    FlowScheduler(const FlowScheduler &) = delete;
    FlowScheduler &operator=(const FlowScheduler &) = delete;

    ~FlowScheduler();

    /**
     * Start a flow now. Zero-byte flows invoke on_complete via a
     * zero-delay event (never synchronously, to keep callback
     * ordering deterministic); the returned id refers to a flow that
     * is already finished, so isActive() reports false and
     * currentRate() reports 0 for it, exactly as for any other
     * completed flow.
     * @return the flow id.
     */
    FlowId start(FlowSpec spec);

    /** Number of currently active flows. */
    std::size_t activeCount() const { return flows_.size(); }

    /**
     * Current rate of an active flow; 0 if unknown/finished. Use
     * isActive() to distinguish "finished or never existed" from a
     * momentarily-zero rate.
     */
    Bps currentRate(FlowId id) const;

    /**
     * Is @p id a currently active (started, not yet completed) flow?
     * False for finished flows, zero-byte degenerate transfers, and
     * ids this scheduler never issued.
     */
    bool isActive(FlowId id) const;

    /**
     * Change a resource's capacity mid-run (the fault-injection
     * path). Updates the topology's Resource::capacity and the
     * scheduler's effective-capacity array together, then re-runs
     * water-filling for the affected flows — with a fast path: when
     * the resource carries no flows, or stays strictly unsaturated
     * under both the old and the new capacity, no rate can change and
     * the update is O(1) with no recompute and no log writes.
     *
     * A capacity of 0 models a downed link: crossing flows stall at
     * rate zero (their telemetry logs record the dropout exactly) and
     * resume automatically when capacity is restored. Stalled flows
     * have no completion event; a plan that downs a route forever
     * without rerouting will deadlock by design.
     */
    void setCapacity(ResourceId rid, Bps capacity);

    /**
     * Remove an active flow without invoking its completion callback
     * (the transfer-manager reroute path). Remaining un-transferred
     * bytes are written to @p remaining when non-null.
     * @return true if the flow was active and is now gone.
     */
    bool cancel(FlowId id, Bytes *remaining = nullptr);

    /**
     * Remove every active flow at once without invoking completion
     * callbacks (the hard-failure abort path). Per-resource rates and
     * telemetry logs drop to zero deterministically via one final
     * recompute; pending completion events are cancelled.
     * @return the number of flows removed.
     */
    std::size_t cancelAll();

    /**
     * Close all rate logs at the current time (call at end of the
     * measurement window before reading telemetry).
     */
    void finalizeLogs();

    /** Work counters since construction. */
    const Stats &stats() const { return stats_; }

  private:
    /** Integrate current rates from last_settle_ to now. */
    void settle();

    /** Run water-filling, update logs, reschedule completion. */
    void recompute();

    /**
     * Try to admit @p f without a full recompute: succeeds when every
     * resource it crosses retains slack for the flow's full cap, so
     * the flow runs at its cap and no existing rate changes.
     */
    bool tryFastStart(Flow &f);

    /** Completion event handler. */
    void onCompletionEvent();

    /** Schedule (or reschedule) the next completion event. */
    void scheduleNextCompletion();

    /** Grow the per-resource scratch arrays to the topology's size. */
    void ensureResourceArrays();

    /** Is the resource at (or beyond) its saturation threshold? */
    bool saturated(ResourceId rid) const;

    /** Does @p f cross a resource faulted to zero capacity? */
    bool stalledByFault(const Flow &f) const;

    Simulation &sim_;
    Topology &topo_;
    std::unordered_map<FlowId, Flow> flows_;
    FlowId next_id_ = 1;
    SimTime last_settle_ = 0.0;
    EventId completion_event_ = 0;
    SimTime completion_time_ = 0.0;  ///< when completion_event_ fires
    Stats stats_;

    // --- flat per-resource state (indexed by ResourceId) -----------------
    std::vector<double> eff_cap_;     ///< capacity * class efficiency
    std::vector<double> total_rate_;  ///< current aggregate rate
    std::vector<int> nflows_;         ///< active flows crossing
    std::vector<double> residual_;    ///< water-filling scratch
    std::vector<int> crossing_;       ///< water-filling scratch
    std::vector<char> in_active_;     ///< membership scratch

    // --- reusable scratch buffers ----------------------------------------
    std::vector<ResourceId> active_resources_;  ///< crossed by any flow
    std::vector<ResourceId> touched_;  ///< resources with a nonzero log rate
    std::vector<Flow *> unfrozen_;
    std::vector<Flow *> still_;
    std::vector<std::function<void()>> callbacks_;
    std::vector<Flow> finished_;
};

} // namespace dstrain

#endif // DSTRAIN_NET_FLOW_SCHEDULER_HH
