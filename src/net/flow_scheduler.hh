/**
 * @file
 * Max-min fair-share flow scheduler (progressive filling).
 *
 * All active flows share resource capacities fairly: rates are
 * computed by water-filling — every flow's rate rises uniformly until
 * it hits its own cap or saturates a resource, at which point it
 * freezes; the rest keep rising. Rates are recomputed whenever the
 * flow set changes and completion events are scheduled on the DES.
 *
 * Resource capacities are de-rated by the per-class protocol
 * efficiency (linkClassEfficiency); per-flow caps additionally carry
 * the route's SerDes degradation, so the stress tests of paper
 * Sec. III-C reproduce directly from this scheduler.
 */

#ifndef DSTRAIN_NET_FLOW_SCHEDULER_HH
#define DSTRAIN_NET_FLOW_SCHEDULER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hw/topology.hh"
#include "net/flow.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace dstrain {

/**
 * The fluid-model network scheduler.
 *
 * One instance per experiment; it mutates resource rate logs in the
 * topology as flow rates change.
 */
class FlowScheduler
{
  public:
    /** @param sim the simulation context; @param topo the network. */
    FlowScheduler(Simulation &sim, Topology &topo);

    FlowScheduler(const FlowScheduler &) = delete;
    FlowScheduler &operator=(const FlowScheduler &) = delete;

    ~FlowScheduler();

    /**
     * Start a flow now. Zero-byte flows invoke on_complete via a
     * zero-delay event (never synchronously, to keep callback
     * ordering deterministic).
     * @return the flow id.
     */
    FlowId start(FlowSpec spec);

    /** Number of currently active flows. */
    std::size_t activeCount() const { return flows_.size(); }

    /** Current rate of an active flow; 0 if unknown/finished. */
    Bps currentRate(FlowId id) const;

    /**
     * Close all rate logs at the current time (call at end of the
     * measurement window before reading telemetry).
     */
    void finalizeLogs();

  private:
    /** Integrate current rates from last_settle_ to now. */
    void settle();

    /** Run water-filling, update logs, reschedule completion. */
    void recompute();

    /** Completion event handler. */
    void onCompletionEvent();

    /** Schedule (or reschedule) the next completion event. */
    void scheduleNextCompletion();

    Simulation &sim_;
    Topology &topo_;
    std::unordered_map<FlowId, Flow> flows_;
    std::vector<ResourceId> touched_;  ///< resources with nonzero rate
    FlowId next_id_ = 1;
    SimTime last_settle_ = 0.0;
    EventId completion_event_ = 0;
    bool in_completion_ = false;  ///< suppress recompute re-entrancy
};

} // namespace dstrain

#endif // DSTRAIN_NET_FLOW_SCHEDULER_HH
