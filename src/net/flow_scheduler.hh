/**
 * @file
 * Max-min fair-share flow scheduler (progressive filling).
 *
 * All active flows share resource capacities fairly: rates are
 * computed by water-filling — every flow's rate rises uniformly until
 * it hits its own cap or saturates a resource, at which point it
 * freezes; the rest keep rising. Rates are recomputed whenever the
 * flow set changes and completion events are scheduled on the DES.
 *
 * Resource capacities are de-rated by the per-class protocol
 * efficiency (linkClassEfficiency); per-flow caps additionally carry
 * the route's SerDes degradation, so the stress tests of paper
 * Sec. III-C reproduce directly from this scheduler.
 *
 * Performance: two solver modes share the same arithmetic (see
 * DESIGN.md "Performance architecture" for the invariants):
 *
 *  - FlowSolverMode::Region (the default) re-solves, on each event,
 *    only the contention region of the affected flows — the connected
 *    component of the flow/resource sharing graph — while every flow
 *    outside it keeps its frozen rate. Because max-min rates of one
 *    component are independent of every other component, the scoped
 *    solve is exact (bit-identical to a global pass), and per-event
 *    cost scales with the region, not the cluster.
 *
 *  - FlowSolverMode::Global runs the full water-filling pass over all
 *    active flows on every event: the bit-exact oracle the region
 *    solver is verified against (`--verify-fair-share` runs both on
 *    every event and asserts identical rates).
 *
 * Either way the water-filling works on flat, reusable per-resource
 * scratch arrays indexed by ResourceId (no hashing, no per-recompute
 * allocation once warm); flows live in a dense slot map with an
 * intrusive active list in ascending-id order; and flow
 * arrivals/departures that touch only unsaturated resources take an
 * O(route length) incremental path that skips any solve entirely.
 */

#ifndef DSTRAIN_NET_FLOW_SCHEDULER_HH
#define DSTRAIN_NET_FLOW_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hw/topology.hh"
#include "net/flow.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace dstrain {

/** Which fair-share solver runs on scheduler events. */
enum class FlowSolverMode {
    Region,  ///< re-solve only the affected contention region (default)
    Global,  ///< full water-filling pass every event (the oracle)
};

/**
 * The fluid-model network scheduler.
 *
 * One instance per experiment; it mutates resource rate logs in the
 * topology as flow rates change.
 */
class FlowScheduler
{
  public:
    /** Log2 buckets in the region-size histogram. */
    static constexpr std::size_t kRegionHistBuckets = 16;

    /** Scheduler work counters (for the micro-benchmarks and tests). */
    struct Stats {
        std::uint64_t recomputes = 0;     ///< water-filling solves (any scope)
        std::uint64_t fast_starts = 0;    ///< starts admitted incrementally
        std::uint64_t fast_finishes = 0;  ///< completions handled incrementally
        std::uint64_t rate_updates = 0;   ///< per-resource rate notifications
        std::uint64_t capacity_updates = 0;  ///< setCapacity[s]() effective calls
        std::uint64_t fast_capacity_updates = 0;  ///< ... without a recompute
        std::uint64_t cancels = 0;        ///< flows removed via cancel()
        std::uint64_t region_solves = 0;  ///< solves scoped to a region
        std::uint64_t region_flows = 0;   ///< total flows across region solves
        std::uint64_t region_peak = 0;    ///< largest region solved (flows)
        std::uint64_t verified_solves = 0;  ///< oracle comparisons performed
        /** Region-size histogram: bucket k counts solves with a region
         * of [2^k, 2^(k+1)) flows (last bucket is open-ended). */
        std::array<std::uint64_t, kRegionHistBuckets> region_hist{};
    };

    /**
     * @param sim the simulation context; @param topo the network;
     * @param mode which solver handles events; @param verify_fair_share
     * run the global oracle after every event and assert that region
     * rates match it bitwise (slow; debugging).
     */
    FlowScheduler(Simulation &sim, Topology &topo,
                  FlowSolverMode mode = FlowSolverMode::Region,
                  bool verify_fair_share = false);

    FlowScheduler(const FlowScheduler &) = delete;
    FlowScheduler &operator=(const FlowScheduler &) = delete;

    ~FlowScheduler();

    /**
     * Start a flow now. Zero-byte flows invoke on_complete via a
     * zero-delay event (never synchronously, to keep callback
     * ordering deterministic); the returned id refers to a flow that
     * is already finished, so isActive() reports false and
     * currentRate() reports 0 for it, exactly as for any other
     * completed flow.
     * @return the flow id.
     */
    FlowId start(FlowSpec spec);

    /** Number of currently active flows. */
    std::size_t activeCount() const { return active_count_; }

    /**
     * Current rate of an active flow; 0 if unknown/finished. Use
     * isActive() to distinguish "finished or never existed" from a
     * momentarily-zero rate.
     */
    Bps currentRate(FlowId id) const;

    /**
     * Is @p id a currently active (started, not yet completed) flow?
     * False for finished flows, zero-byte degenerate transfers, and
     * ids this scheduler never issued.
     */
    bool isActive(FlowId id) const;

    /**
     * Change a resource's capacity mid-run (the fault-injection
     * path). Updates the topology's Resource::capacity and the
     * scheduler's effective-capacity array together, then re-runs
     * water-filling for the affected flows — with a fast path: when
     * the resource carries no flows, or stays strictly unsaturated
     * under both the old and the new capacity, no rate can change and
     * the update is O(1) with no recompute and no log writes.
     *
     * A capacity of 0 models a downed link: crossing flows stall at
     * rate zero (their telemetry logs record the dropout exactly) and
     * resume automatically when capacity is restored. Stalled flows
     * have no completion event; a plan that downs a route forever
     * without rerouting will deadlock by design.
     */
    void setCapacity(ResourceId rid, Bps capacity);

    /**
     * Apply several capacity changes as one batch with a single solve
     * (the multi-link fault path: one fault event hitting a failure
     * domain coalesces into one water-filling pass instead of one per
     * link). State-equivalent to calling setCapacity() per entry at
     * the same instant, but counted once in Stats::capacity_updates
     * and solved once. Entries whose capacity is unchanged are
     * skipped; if every changed entry meets the fast-path condition
     * the batch completes without any solve.
     */
    void setCapacities(const std::vector<std::pair<ResourceId, Bps>> &updates);

    /**
     * Remove an active flow without invoking its completion callback
     * (the transfer-manager reroute path). Remaining un-transferred
     * bytes are written to @p remaining when non-null.
     * @return true if the flow was active and is now gone.
     */
    bool cancel(FlowId id, Bytes *remaining = nullptr);

    /**
     * Remove every active flow at once without invoking completion
     * callbacks (the hard-failure abort path). Per-resource rates and
     * telemetry logs drop to zero deterministically; pending
     * completion events are cancelled.
     * @return the number of flows removed.
     */
    std::size_t cancelAll();

    /**
     * Close all rate logs at the current time (call at end of the
     * measurement window before reading telemetry).
     */
    void finalizeLogs();

    /** Work counters since construction. */
    const Stats &stats() const { return stats_; }

    /** The solver mode this scheduler was built with. */
    FlowSolverMode solverMode() const { return mode_; }

  private:
    /** One entry of a resource's crossing-flow list. */
    struct ResFlow {
        std::uint32_t slot;  ///< the crossing flow's slot
        std::uint32_t idx;   ///< index of this resource in its route
    };

    /** Integrate current rates from last_settle_ to now. */
    void settle();

    /** Global water-filling + log update + completion reschedule. */
    void recompute();

    /**
     * Try to admit @p f without a full recompute: succeeds when every
     * resource it crosses retains slack for the flow's full cap, so
     * the flow runs at its cap and no existing rate changes.
     */
    bool tryFastStart(Flow &f);

    /** Completion event handler. */
    void onCompletionEvent();

    /** Schedule (or reschedule) the next completion event. */
    void scheduleNextCompletion();

    /** Grow the per-resource scratch arrays to the topology's size. */
    void ensureResourceArrays();

    /** Is the resource at (or beyond) its saturation threshold? */
    bool saturated(ResourceId rid) const;

    /** Does @p f cross a resource faulted to zero capacity? */
    bool stalledByFault(const Flow &f) const;

    // --- dense slot map ---------------------------------------------------

    /** Slot of an active flow id, or -1. */
    std::int32_t slotOf(FlowId id) const
    {
        if (id == 0 || id >= next_id_)
            return -1;
        return slot_of_id_[static_cast<std::size_t>(id - 1)];
    }

    /** Place @p f in a slot, link it into the active list and the
     * per-resource flow lists. @return the slot. */
    std::uint32_t registerFlow(Flow f);

    /** Detach slot @p slot from the active list, the per-resource
     * lists and the id map (the Flow itself stays readable). */
    void detachFlow(std::uint32_t slot);

    /** Reset a detached slot's Flow and return it to the free list. */
    void releaseSlot(std::uint32_t slot);

    // --- region machinery -------------------------------------------------

    /** Start a new region (bumps the BFS mark epoch). */
    void beginRegion();

    /** Seed the region with one active flow. */
    void seedRegionFlow(std::uint32_t slot);

    /** Seed the region with every flow crossing @p rid. */
    void seedRegionResource(ResourceId rid);

    /**
     * Close the seeded region over shared resources (BFS), then run
     * the water-filling pass over it alone and write the region's
     * rate logs. No-op on an empty seed set.
     */
    void solveRegion();

    /**
     * Partition the seed list in region_flows_ into connected
     * components of the contention graph, closing each over shared
     * resources (the ripple closure). components_ receives the
     * member slots grouped by component in BFS discovery order
     * (deterministic for a given event history; the fill is
     * order-insensitive, see fillComponent()); comp_ranges_ receives
     * each group's start offset. Membership is marked in comp_mark_
     * at comp_epoch_.
     */
    void partitionComponents();

    /**
     * Progressive filling over components_[begin, end) — one
     * connected component. Assigns flow rates; collects the
     * component's resources into comp_resources_ and appends them to
     * active_resources_. Increment rounds are component-local: this
     * is the solver's bit-exact definition of fair share (see
     * DESIGN.md), identical whether a component is re-solved alone
     * or as part of a full pass.
     */
    void fillComponent(std::size_t begin, std::size_t end);

    /** fillComponent() into oracle_rate_, leaving flows untouched. */
    void oracleFillComponent(std::size_t begin, std::size_t end);

    /**
     * Zero the telemetry log and total of @p rid if no flow crosses
     * it anymore (removal paths; epoch-deduplicated within one event).
     */
    void zeroIfIdle(ResourceId rid);

    /** Run the global oracle and assert bitwise-equal rates. */
    void maybeVerify();

    Simulation &sim_;
    Topology &topo_;
    const FlowSolverMode mode_;
    const bool verify_;
    FlowId next_id_ = 1;
    SimTime last_settle_ = 0.0;
    EventId completion_event_ = 0;
    SimTime completion_time_ = 0.0;  ///< when completion_event_ fires
    Stats stats_;

    // --- dense flow storage ----------------------------------------------
    std::vector<Flow> slots_;               ///< flow storage (slot-indexed)
    std::vector<std::uint32_t> free_slots_; ///< reusable slots (LIFO)
    std::vector<std::int32_t> slot_of_id_;  ///< id-1 -> slot, -1 inactive
    /** Intrusive doubly-linked active list. Ids are issued
     * monotonically and always appended at the tail, so iteration
     * from head_slot_ is in ascending-id order — the canonical,
     * deterministic flow order of every solver loop. */
    std::vector<std::int32_t> next_slot_;
    std::vector<std::int32_t> prev_slot_;
    std::int32_t head_slot_ = -1;
    std::int32_t tail_slot_ = -1;
    std::size_t active_count_ = 0;
    /**
     * Legacy-order shim: id -> slot, mirroring the insert/erase
     * sequence the pre-slot-map `unordered_map<FlowId, Flow>`
     * container saw. Simultaneous finishers must run their completion
     * callbacks in that container's iteration order — the order the
     * golden fingerprint hashes were captured under — and hash-map
     * iteration order is a pure function of the key insert/erase
     * history, so replaying the history on this map reproduces it
     * exactly. Consulted only where order is observable: finisher
     * collection in onCompletionEvent() and the per-resource totals
     * accumulation after each solve (floating-point summation order
     * moves the last bit). The water-fill loops themselves iterate
     * the intrusive list / components_ (ascending ids).
     */
    std::unordered_map<FlowId, std::int32_t> order_;

    // --- flat per-resource state (indexed by ResourceId) -----------------
    std::vector<double> eff_cap_;     ///< capacity * class efficiency
    std::vector<double> total_rate_;  ///< current aggregate rate
    std::vector<int> nflows_;         ///< active flows crossing
    std::vector<double> residual_;    ///< water-filling scratch
    std::vector<int> crossing_;       ///< water-filling scratch
    std::vector<char> in_active_;     ///< membership scratch
    std::vector<std::vector<ResFlow>> res_flows_;  ///< crossing flows

    // --- region scratch ---------------------------------------------------
    std::vector<std::uint64_t> flow_mark_;  ///< seed-dedup mark per slot
    std::vector<std::uint64_t> res_mark_;   ///< zeroIfIdle mark per resource
    std::vector<std::uint8_t> res_saturated_;  ///< per-round fill flag
    std::uint64_t mark_epoch_ = 0;
    std::vector<std::uint32_t> region_flows_;  ///< current seed list

    // --- component partition (see partitionComponents()) ------------------
    std::vector<std::uint64_t> comp_mark_;      ///< per slot
    std::vector<std::uint64_t> res_comp_mark_;  ///< per resource
    std::uint64_t comp_epoch_ = 0;
    std::vector<std::uint32_t> components_;  ///< slots grouped by component
    std::vector<std::size_t> comp_ranges_;   ///< start offset per group
    std::vector<ResourceId> comp_resources_; ///< one component's resources

    // --- reusable scratch buffers ----------------------------------------
    std::vector<ResourceId> active_resources_;  ///< crossed by any flow
    std::vector<ResourceId> touched_;  ///< nonzero-log resources (Global)
    std::vector<ResourceId> cap_dirty_;  ///< batch-update seeds
    std::vector<Flow *> unfrozen_;
    std::vector<Flow *> still_;
    std::vector<std::function<void()>> callbacks_;
    std::vector<Flow> finished_;
    std::vector<double> oracle_rate_;          ///< verify-mode rates
    std::vector<std::uint32_t> oracle_unfrozen_;
    std::vector<std::uint32_t> oracle_still_;
};

} // namespace dstrain

#endif // DSTRAIN_NET_FLOW_SCHEDULER_HH
