/**
 * @file
 * Max-min fair-share flow scheduler (progressive filling).
 *
 * All active flows share resource capacities fairly: rates are
 * computed by water-filling — every flow's rate rises uniformly until
 * it hits its own cap or saturates a resource, at which point it
 * freezes; the rest keep rising. Rates are recomputed whenever the
 * flow set changes and completion events are scheduled on the DES.
 *
 * Resource capacities are de-rated by the per-class protocol
 * efficiency (linkClassEfficiency); per-flow caps additionally carry
 * the route's SerDes degradation, so the stress tests of paper
 * Sec. III-C reproduce directly from this scheduler.
 *
 * Performance: two solver modes share the same arithmetic (see
 * DESIGN.md "Performance architecture" for the invariants):
 *
 *  - FlowSolverMode::Region (the default) re-solves, on each event,
 *    only the contention region of the affected flows — the connected
 *    component of the flow/resource sharing graph — while every flow
 *    outside it keeps its frozen rate. Because max-min rates of one
 *    component are independent of every other component, the scoped
 *    solve is exact (bit-identical to a global pass), and per-event
 *    cost scales with the region, not the cluster.
 *
 *  - FlowSolverMode::Global runs the full water-filling pass over all
 *    active flows on every event: the bit-exact oracle the region
 *    solver is verified against (`--verify-fair-share` runs both on
 *    every event and asserts identical rates).
 *
 * Per-event cost is O(region) end-to-end, not just for the solve:
 * each flow carries an anchored (time, remaining) pair settled only
 * when its rate changes, a stored predicted finish time kept in a
 * lazy-invalidation min-heap (the completion index) touched only for
 * flows whose rate changed, and per-resource totals are re-summed
 * from the crossing-flow lists of the region's resources alone.
 * Fault-stalled zero-rate flows are parked on a stalled list that no
 * fill, scan, or index operation revisits until setCapacity()
 * restores their link. Independent components of one solve can be
 * filled concurrently on a TaskPool with results committed in
 * canonical component order — bit-identical to the serial fill.
 *
 * Either way the water-filling works on flat, reusable per-resource
 * scratch arrays indexed by ResourceId (no hashing, no per-recompute
 * allocation once warm); flows live in a dense slot map with an
 * intrusive active list in ascending-id order; and flow
 * arrivals/departures that touch only unsaturated resources take an
 * O(route length) incremental path that skips any solve entirely.
 */

#ifndef DSTRAIN_NET_FLOW_SCHEDULER_HH
#define DSTRAIN_NET_FLOW_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "hw/topology.hh"
#include "net/flow.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace dstrain {

class TaskPool;

/** Which fair-share solver runs on scheduler events. */
enum class FlowSolverMode {
    Region,  ///< re-solve only the affected contention region (default)
    Global,  ///< full water-filling pass every event (the oracle)
};

/** Construction options for FlowScheduler. */
struct FlowSchedulerOptions {
    /** Which solver handles events. */
    FlowSolverMode mode = FlowSolverMode::Region;

    /** Run the global oracle after every event and assert that the
     * stored rates, the completion index and the stalled list all
     * match a from-scratch solve bitwise (slow; debugging). */
    bool verify_fair_share = false;

    /** Keep the incremental completion-time index (the default).
     * False restores the legacy full scan over the active list when
     * scheduling the next completion — same stored finish times, so
     * results are bit-identical either way. */
    bool completion_index = true;

    /** Fill independent components of one solve concurrently on this
     * pool (nullptr = serial). Results are committed in canonical
     * component order, bit-identical to the serial fill. */
    TaskPool *fill_pool = nullptr;

    /** Parallel fills engage only when a solve covers at least two
     * components and this many flows in total. */
    std::size_t parallel_fill_threshold = 16;
};

/**
 * The fluid-model network scheduler.
 *
 * One instance per experiment; it mutates resource rate logs in the
 * topology as flow rates change.
 */
class FlowScheduler
{
  public:
    /** Log2 buckets in the region-size histogram. */
    static constexpr std::size_t kRegionHistBuckets = 16;

    /** Scheduler work counters (for the micro-benchmarks and tests). */
    struct Stats {
        std::uint64_t recomputes = 0;     ///< water-filling solves (any scope)
        std::uint64_t fast_starts = 0;    ///< starts admitted incrementally
        std::uint64_t fast_finishes = 0;  ///< completions handled incrementally
        std::uint64_t rate_updates = 0;   ///< per-resource rate notifications
        std::uint64_t capacity_updates = 0;  ///< setCapacity[s]() effective calls
        std::uint64_t fast_capacity_updates = 0;  ///< ... without a recompute
        std::uint64_t cancels = 0;        ///< flows removed via cancel()
        std::uint64_t region_solves = 0;  ///< solves scoped to a region
        std::uint64_t region_flows = 0;   ///< total flows across region solves
        std::uint64_t region_peak = 0;    ///< largest region solved (flows)
        std::uint64_t verified_solves = 0;  ///< oracle comparisons performed
        std::uint64_t completion_index_updates = 0;  ///< finish-time (re)insertions
        std::uint64_t completion_scans_avoided = 0;  ///< reschedules served by the index
        std::uint64_t batched_events = 0;  ///< ops whose solve a batch deferred
        std::uint64_t parallel_component_solves = 0;  ///< components filled on the pool
        std::uint64_t stalled_parks = 0;  ///< flows parked on the stalled list
        /** Region-size histogram: bucket k counts solves with a region
         * of [2^k, 2^(k+1)) flows (last bucket is open-ended). */
        std::array<std::uint64_t, kRegionHistBuckets> region_hist{};
    };

    /** Build with explicit options. */
    FlowScheduler(Simulation &sim, Topology &topo,
                  FlowSchedulerOptions opts);

    /**
     * Legacy convenience constructor: default options with @p mode
     * and @p verify_fair_share overridden.
     */
    FlowScheduler(Simulation &sim, Topology &topo,
                  FlowSolverMode mode = FlowSolverMode::Region,
                  bool verify_fair_share = false);

    FlowScheduler(const FlowScheduler &) = delete;
    FlowScheduler &operator=(const FlowScheduler &) = delete;

    ~FlowScheduler();

    /**
     * Start a flow now. Zero-byte flows invoke on_complete via a
     * zero-delay event (never synchronously, to keep callback
     * ordering deterministic); the returned id refers to a flow that
     * is already finished, so isActive() reports false and
     * currentRate() reports 0 for it, exactly as for any other
     * completed flow.
     * @return the flow id.
     */
    FlowId start(FlowSpec spec);

    /** Number of currently active flows. */
    std::size_t activeCount() const { return active_count_; }

    /** Number of flows currently parked on the stalled list. */
    std::size_t stalledCount() const { return stalled_.size(); }

    /**
     * Current rate of an active flow; 0 if unknown/finished. Use
     * isActive() to distinguish "finished or never existed" from a
     * momentarily-zero rate.
     */
    Bps currentRate(FlowId id) const;

    /**
     * Is @p id a currently active (started, not yet completed) flow?
     * False for finished flows, zero-byte degenerate transfers, and
     * ids this scheduler never issued.
     */
    bool isActive(FlowId id) const;

    /**
     * Change a resource's capacity mid-run (the fault-injection
     * path). Updates the topology's Resource::capacity and the
     * scheduler's effective-capacity array together, then re-runs
     * water-filling for the affected flows — with a fast path: when
     * the resource carries no flows, or stays strictly unsaturated
     * under both the old and the new capacity, no rate can change and
     * the update is O(1) with no recompute and no log writes.
     *
     * A capacity of 0 models a downed link: crossing flows stall at
     * rate zero (their telemetry logs record the dropout exactly) and
     * are parked on the stalled list — no fill, completion scan or
     * index touches them — until a restore unparks them. Stalled
     * flows have no completion event; a plan that downs a route
     * forever without rerouting will deadlock by design.
     */
    void setCapacity(ResourceId rid, Bps capacity);

    /**
     * Apply several capacity changes as one batch with a single solve
     * (the multi-link fault path: one fault event hitting a failure
     * domain coalesces into one water-filling pass instead of one per
     * link). State-equivalent to calling setCapacity() per entry at
     * the same instant, but counted once in Stats::capacity_updates
     * and solved once. Entries whose capacity is unchanged are
     * skipped; if every changed entry meets the fast-path condition
     * the batch completes without any solve.
     */
    void setCapacities(const std::vector<std::pair<ResourceId, Bps>> &updates);

    /**
     * Open an event-storm batch: until the matching endBatch(),
     * setCapacity()/setCapacities() update capacities (and the
     * topology) immediately but defer their solves, and start()/
     * cancel() defer theirs too; endBatch() closes the union region
     * once and runs a single solve. Nestable; only the outermost
     * endBatch() flushes.
     *
     * Capacity-only batches are state-equivalent to the unbatched
     * call sequence (water-filling is a pure function of the final
     * capacities, and a capacity change that leaves a resource
     * unsaturated never moves the fill's binding minimum — see
     * DESIGN.md §6.5). Batches containing start()/cancel() trade that
     * equivalence for one solve (fast-start admission is skipped);
     * the fault injector only batches capacity storms.
     */
    void beginBatch();

    /** Close a batch; the outermost call flushes the deferred solve. */
    void endBatch();

    /** RAII wrapper for beginBatch()/endBatch(). */
    class ScopedBatch
    {
      public:
        explicit ScopedBatch(FlowScheduler &s) : s_(s) { s_.beginBatch(); }
        ~ScopedBatch() { s_.endBatch(); }
        ScopedBatch(const ScopedBatch &) = delete;
        ScopedBatch &operator=(const ScopedBatch &) = delete;

      private:
        FlowScheduler &s_;
    };

    /**
     * Remove an active flow without invoking its completion callback
     * (the transfer-manager reroute path). Remaining un-transferred
     * bytes are written to @p remaining when non-null.
     * @return true if the flow was active and is now gone.
     */
    bool cancel(FlowId id, Bytes *remaining = nullptr);

    /**
     * Remove every active flow at once without invoking completion
     * callbacks (the hard-failure abort path). Per-resource rates and
     * telemetry logs drop to zero deterministically; pending
     * completion events are cancelled. Not callable inside a batch.
     * @return the number of flows removed.
     */
    std::size_t cancelAll();

    /**
     * Close all rate logs at the current time (call at end of the
     * measurement window before reading telemetry).
     */
    void finalizeLogs();

    /** Work counters since construction. */
    const Stats &stats() const { return stats_; }

    /** The solver mode this scheduler was built with. */
    FlowSolverMode solverMode() const { return mode_; }

  private:
    /** One entry of a resource's crossing-flow list. */
    struct ResFlow {
        std::uint32_t slot;  ///< the crossing flow's slot
        std::uint32_t idx;   ///< index of this resource in its route
    };

    /**
     * Per-worker water-filling scratch (one per pool worker).
     *
     * The fill rounds run on dense component-local arrays indexed by
     * local flow / resource ids (the CSR built by
     * partitionComponents()), so they touch a few KB of contiguous,
     * cache-resident memory instead of striding over O(cluster)
     * global arrays. The arithmetic — the values and the order they
     * combine in — is exactly the global-array fill's, so the result
     * is bit-identical; only the memory locations differ.
     */
    struct FillScratch {
        // Mutable per-resource round state, indexed by local id
        // (initialized from the comp_* spans on entry).
        std::vector<double> residual;
        std::vector<int> crossing;
        std::vector<unsigned char> sat;
        std::vector<std::uint32_t> live;    ///< pruned local working set
        // Mutable per-flow round state, local flow index = offset in
        // the component's span of components_.
        std::vector<double> frate;
        std::vector<std::uint32_t> unfrozen;
        std::vector<std::uint32_t> still;
    };

    /** One completion-index heap entry; stale when the slot's
     * index_seq_ no longer matches seq (lazy invalidation, same idiom
     * as the event queue's slot/generation scheme). */
    struct IndexEntry {
        SimTime key;        ///< predicted finish time
        std::uint64_t seq;  ///< insertion stamp for staleness checks
        std::uint32_t slot; ///< the flow's slot
    };
    struct IndexLater {
        bool operator()(const IndexEntry &a, const IndexEntry &b) const
        {
            return a.key > b.key;
        }
    };
    using IndexHeap =
        std::priority_queue<IndexEntry, std::vector<IndexEntry>,
                            IndexLater>;

    /** Make @p f.remaining exact at @p now (rate constant since its
     * anchor); one multiply-subtract over the whole span. */
    static void settleFlow(Flow &f, SimTime now)
    {
        if (now > f.anchor) {
            f.remaining -= f.rate * (now - f.anchor);
            if (f.remaining < 0.0)
                f.remaining = 0.0;
            f.anchor = now;
        }
    }

    /** Global water-filling + log update + completion reschedule. */
    void recompute();

    /**
     * Try to admit @p f without a full recompute: succeeds when every
     * resource it crosses retains slack for the flow's full cap, so
     * the flow runs at its cap and no existing rate changes.
     */
    bool tryFastStart(Flow &f);

    /** Completion event handler. */
    void onCompletionEvent();

    /** Schedule (or reschedule) the next completion event from the
     * completion index (or the legacy scan over stored finish
     * times when the index is disabled). */
    void scheduleNextCompletion();

    /** Grow the per-resource scratch arrays to the topology's size. */
    void ensureResourceArrays();

    /** Is the resource at (or beyond) its saturation threshold? */
    bool saturated(ResourceId rid) const;

    /** Does @p f cross a resource faulted to zero capacity? */
    bool stalledByFault(const Flow &f) const;

    // --- completion index -------------------------------------------------

    /** Record @p slot's new predicted finish time in the index. */
    void indexUpdate(std::uint32_t slot, SimTime key);

    /** Invalidate @p slot's index entry (lazy: skimmed on pop). */
    void indexRemove(std::uint32_t slot)
    {
        index_seq_[slot] = 0;
    }

    /** Drop stale entries from the top of the index heap. */
    void skimIndex();

    /** Rebuild the heap from live entries when stale ones pile up. */
    void compactIndexIfBloated();

    /** Repack route_arena_ to active spans only (see route_arena_). */
    void compactRouteArena();

    // --- stalled-flow parking ---------------------------------------------

    /** Park @p slot on the stalled list (idempotent); clears its
     * finish time and index entry. */
    void parkStalled(std::uint32_t slot);

    /** Remove @p slot from the stalled list and clear its flag. */
    void unparkStalled(std::uint32_t slot);

    /** Unpark every stalled flow crossing @p rid (capacity-restore
     * path); flows still blocked elsewhere re-park at the next
     * solve's commit. */
    void unparkResource(ResourceId rid);

    // --- dense slot map ---------------------------------------------------

    /** Slot of an active flow id, or -1. */
    std::int32_t slotOf(FlowId id) const
    {
        if (id == 0 || id >= next_id_)
            return -1;
        return slot_of_id_[static_cast<std::size_t>(id - 1)];
    }

    /** Place @p f in a slot, link it into the active list and the
     * per-resource flow lists. @return the slot. */
    std::uint32_t registerFlow(Flow f);

    /** Detach slot @p slot from the active list, the per-resource
     * lists and the id map (the Flow itself stays readable). */
    void detachFlow(std::uint32_t slot);

    /** Reset a detached slot's Flow and return it to the free list. */
    void releaseSlot(std::uint32_t slot);

    // --- region machinery -------------------------------------------------

    /** Start a new region (bumps the BFS mark epoch). */
    void beginRegion();

    /** Seed the region with one active flow (stalled flows are
     * skipped: they hold no rate and join no fill until unparked). */
    void seedRegionFlow(std::uint32_t slot);

    /** Seed the region with every flow crossing @p rid. */
    void seedRegionResource(ResourceId rid);

    /**
     * Close the seeded region over shared resources (BFS), then run
     * the water-filling pass over it alone and write the region's
     * rate logs. No-op on an empty seed set.
     */
    void solveRegion();

    /**
     * Partition the seed list in region_flows_ into connected
     * components of the contention graph, closing each over shared
     * resources (the ripple closure). components_ receives the
     * member slots grouped by component in BFS discovery order
     * (deterministic for a given event history; the fill is
     * order-insensitive, see fillComponent()); comp_ranges_ receives
     * each group's start offset. Membership is marked in comp_mark_
     * at comp_epoch_. Stalled flows never join.
     */
    void partitionComponents();

    /**
     * Fill every partitioned component — serially, or concurrently on
     * the pool when the solve is large enough — then commit the
     * results in canonical component order: settle each flow whose
     * rate changed at its old rate, refresh its finish time and index
     * entry, and park flows filled at rate zero. Appends the solved
     * resources to active_resources_ in component order.
     */
    void solveComponents();

    /** The serial commit pass of solveComponents() (see above). */
    void commitRates();

    /**
     * Progressive filling over component @p c (its flow span of
     * components_ and its resource span of the partition CSR).
     * Assigns flow rates; appends the component's resources to
     * @p out (in discovery order). Increment rounds are
     * component-local: this is the solver's bit-exact definition of
     * fair share (see DESIGN.md), identical whether a component is
     * re-solved alone or as part of a full pass, serially or on a
     * pool worker. Reads only the shared partition CSR (built before
     * any fill starts) and writes only its own scratch and its own
     * component's flow slots, so concurrent calls on disjoint
     * components are race-free.
     */
    void fillComponent(std::size_t c, FillScratch &ws,
                       std::vector<ResourceId> &out);

    /** fillComponent() into oracle_rate_, leaving flows untouched. */
    void oracleFillComponent(std::size_t begin, std::size_t end);

    /** Re-sum per-resource totals of active_resources_ from their
     * crossing-flow lists and write the rate logs. */
    void writeRegionTotals();

    /**
     * Zero the telemetry log and total of @p rid if no flow crosses
     * it anymore (removal paths; epoch-deduplicated within one event).
     */
    void zeroIfIdle(ResourceId rid);

    /** Flush the outermost batch: one closure, one solve. */
    void flushBatch();

    /** Run the global oracle and assert bitwise-equal rates, a
     * consistent completion index and a sound stalled list. */
    void maybeVerify();

    Simulation &sim_;
    Topology &topo_;
    const FlowSolverMode mode_;
    const bool verify_;
    const bool use_index_;
    TaskPool *const pool_;
    const std::size_t parallel_threshold_;
    FlowId next_id_ = 1;
    EventId completion_event_ = 0;
    SimTime completion_time_ = 0.0;  ///< when completion_event_ fires
    Stats stats_;

    // --- dense flow storage ----------------------------------------------
    std::vector<Flow> slots_;               ///< flow storage (slot-indexed)
    std::vector<std::uint32_t> free_slots_; ///< reusable slots (LIFO)
    std::vector<std::int32_t> slot_of_id_;  ///< id-1 -> slot, -1 inactive
    /** Intrusive doubly-linked active list. Ids are issued
     * monotonically and always appended at the tail, so iteration
     * from head_slot_ is in ascending-id order — the canonical,
     * deterministic flow order of every solver loop and of
     * simultaneous-finisher callbacks. */
    std::vector<std::int32_t> next_slot_;
    std::vector<std::int32_t> prev_slot_;
    std::int32_t head_slot_ = -1;
    std::int32_t tail_slot_ = -1;
    std::size_t active_count_ = 0;

    // --- completion index -------------------------------------------------
    IndexHeap index_;
    /** Per-slot stamp of the live heap entry; 0 = none. */
    std::vector<std::uint64_t> index_seq_;
    std::uint64_t next_index_seq_ = 1;
    std::vector<std::uint32_t> finisher_slots_;  ///< per-event scratch

    // --- stalled-flow parking ---------------------------------------------
    std::vector<std::uint32_t> stalled_;      ///< parked slots
    std::vector<std::uint32_t> stalled_pos_;  ///< slot -> index in stalled_

    /** Dense per-slot mirrors of Flow::rate and Flow::stalled. The
     * per-edge loops (BFS closure, totals summation) read these 8- /
     * 1-byte arrays instead of pulling a whole Flow struct into
     * cache per edge; every writer of the mirrored fields updates
     * them in the same statement. */
    std::vector<double> rate_slot_;
    std::vector<std::uint8_t> stalled_slot_;

    /** Flat mirror of every active flow's resource list (and rate
     * cap), appended at registration and compacted when the arena
     * doubles its live footprint — same lazy-reclamation idea as the
     * completion index. The partition BFS walks these contiguous
     * spans instead of dereferencing each Flow's own vector, which
     * kept one cache-missing struct hop per member flow in the
     * per-solve closure. */
    std::vector<ResourceId> route_arena_;
    std::vector<std::uint32_t> route_begin_;  ///< per-slot arena offset
    std::vector<std::uint32_t> route_len_;    ///< per-slot span length
    std::size_t arena_live_ = 0;  ///< summed span length of active slots
    std::vector<double> cap_slot_;  ///< Flow::cap mirror (set once)

    // --- event-storm batching ---------------------------------------------
    int batch_depth_ = 0;
    bool batch_need_solve_ = false;
    std::vector<std::uint32_t> batch_start_slots_;  ///< deferred starts
    std::vector<ResourceId> batch_dirty_;  ///< deferred capacity seeds

    // --- flat per-resource state (indexed by ResourceId) -----------------
    std::vector<double> eff_cap_;     ///< capacity * class efficiency
    std::vector<double> total_rate_;  ///< current aggregate rate
    std::vector<int> nflows_;         ///< active flows crossing
    std::vector<double> residual_;    ///< water-filling scratch
    std::vector<int> crossing_;       ///< water-filling scratch
    std::vector<char> in_active_;     ///< membership scratch
    std::vector<std::vector<ResFlow>> res_flows_;  ///< crossing flows

    // --- region scratch ---------------------------------------------------
    std::vector<std::uint64_t> flow_mark_;  ///< seed-dedup mark per slot
    std::vector<std::uint64_t> res_mark_;   ///< zeroIfIdle mark per resource
    std::vector<std::uint8_t> res_saturated_;  ///< per-round fill flag
    std::uint64_t mark_epoch_ = 0;
    std::vector<std::uint32_t> region_flows_;  ///< current seed list

    // --- component partition (see partitionComponents()) ------------------
    std::vector<std::uint64_t> comp_mark_;      ///< per slot
    std::vector<std::uint64_t> res_comp_mark_;  ///< per resource
    std::uint64_t comp_epoch_ = 0;
    std::vector<std::uint32_t> components_;  ///< slots grouped by component
    std::vector<std::size_t> comp_ranges_;   ///< start offset per group
    std::vector<double> prev_rate_;  ///< pre-fill rates, parallel to components_
    std::vector<ResourceId> comp_resources_; ///< oracle-fill working set
    /** The partition CSR: everything a fill needs, gathered by the
     * BFS (which touches each flow and each crossing list anyway) so
     * the fills themselves never stride over global state. Resource
     * ids inside a component are component-local (0..n-1 in discovery
     * order). comp_flow_begin_ is aligned with components_ (one tail
     * entry); comp_rid_ranges_ with comp_ranges_. */
    std::vector<std::uint32_t> comp_flow_res_;   ///< local rid per route edge
    std::vector<std::uint32_t> comp_flow_begin_; ///< CSR offsets per flow
    std::vector<double> comp_fcap_;          ///< flow caps, per components_
    std::vector<ResourceId> comp_rids_;      ///< local id -> rid, flat
    std::vector<std::size_t> comp_rid_ranges_;  ///< rid span per component
    std::vector<int> comp_crossing_;   ///< initial crossing counts, flat
    std::vector<double> comp_rcap_;    ///< effective caps, flat
    std::vector<std::uint32_t> res_local_;  ///< rid -> local id (comp-epoch)

    // --- reusable scratch buffers ----------------------------------------
    std::vector<FillScratch> fill_scratch_;  ///< one per pool worker
    std::vector<std::vector<ResourceId>> comp_out_;  ///< per-component rids
    std::vector<ResourceId> active_resources_;  ///< crossed by any flow
    std::vector<ResourceId> touched_;  ///< nonzero-log resources (Global)
    std::vector<ResourceId> cap_dirty_;  ///< batch-update seeds
    std::vector<std::function<void()>> callbacks_;
    std::vector<Flow> finished_;
    std::vector<double> oracle_rate_;          ///< verify-mode rates
    std::vector<std::uint32_t> oracle_unfrozen_;
    std::vector<std::uint32_t> oracle_still_;
};

} // namespace dstrain

#endif // DSTRAIN_NET_FLOW_SCHEDULER_HH
