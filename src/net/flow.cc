/**
 * @file
 * flow.hh is header-only; this translation unit exists to keep the
 * build layout uniform (one .cc per header) and to hold the
 * out-of-line pieces if Flow grows them.
 */

#include "net/flow.hh"
