/**
 * @file
 * Implementation of the transfer manager.
 */

#include "net/transfer_manager.hh"

#include <algorithm>
#include <utility>

#include "net/resilience.hh"
#include "util/logging.hh"

namespace dstrain {

namespace {

/** Per-attempt flow cap: caller's cap merged with the route cap. */
Bps
attemptRateCap(Bps explicit_cap, double rate_factor, const Route &route)
{
    Bps rate_cap = explicit_cap;
    if (rate_factor < 1.0) {
        const Bps scaled = route.rate_cap * rate_factor;
        rate_cap = rate_cap > 0.0 ? std::min(rate_cap, scaled) : scaled;
    }
    return rate_cap;
}

/**
 * Delivery tolerance: the scheduler completes a flow with up to one
 * byte (its completion epsilon) outstanding, each relaunch can leave
 * another, and long transfers accumulate float dust proportional to
 * their size.
 */
Bytes
deliveryTolerance(Bytes requested, int attempts)
{
    return 2.0 * (attempts + 1) + 1e-9 * requested;
}

} // namespace

TransferManager::TransferManager(Simulation &sim, Cluster &cluster,
                                 FlowScheduler &flows)
    : sim_(sim), cluster_(cluster), flows_(flows)
{
}

std::uint64_t
TransferManager::start(ComponentId src, ComponentId dst, Bytes bytes,
                       std::function<void()> on_done, TransferOptions opts)
{
    DSTRAIN_ASSERT(src != dst, "transfer from component %d to itself",
                   src);
    DSTRAIN_ASSERT(opts.rate_factor > 0.0 && opts.rate_factor <= 1.0,
                   "bad rate factor %g", opts.rate_factor);
    Route route = cluster_.router().routeThrough(src, opts.waypoints,
                                                 dst, opts.flow_key);
    const SimTime latency = route.latency;
    ++stats_.started;
    stats_.bytes_requested += bytes;

    if (retry_.enabled) {
        // Retryable path: keep the full request so a stranded flow
        // can be cancelled, rerouted and relaunched with whatever
        // bytes remain. The route is re-resolved at every launch.
        const std::uint64_t xid = next_xfer_++;
        Pending p;
        p.src = src;
        p.dst = dst;
        p.waypoints = std::move(opts.waypoints);
        p.requested = bytes;
        p.remaining = bytes;
        p.rate_cap = opts.rate_cap;
        p.rate_factor = opts.rate_factor;
        p.extra_resources = std::move(opts.extra_resources);
        p.flow_key = opts.flow_key;
        p.tag = std::move(opts.tag);
        p.on_done = std::move(on_done);
        pending_.emplace(xid, std::move(p));
        sim_.events().scheduleAfter(
            latency, [this, xid] { launchPending(xid); });
        return xid;
    }

    const Bps rate_cap =
        attemptRateCap(opts.rate_cap, opts.rate_factor, route);
    auto launch = [this, route = std::move(route), bytes,
                   on_done = std::move(on_done), rate_cap,
                   extra = std::move(opts.extra_resources),
                   tag = std::move(opts.tag),
                   epoch = epoch_]() mutable {
        if (epoch != epoch_)
            return;  // aborted before the latency elapsed
        FlowSpec spec;
        spec.route = std::move(route);
        spec.bytes = bytes;
        spec.rate_cap = rate_cap;
        spec.extra_resources = std::move(extra);
        std::string done_tag = tag;
        spec.tag = std::move(tag);
        spec.on_complete = [this, bytes, on_done = std::move(on_done),
                            done_tag = std::move(done_tag), epoch] {
            if (epoch != epoch_)
                return;  // abortAll() accounted this one in aggregate
            accountDelivery(bytes, 0.0, 0, done_tag);
            if (on_done)
                on_done();
        };
        flows_.start(std::move(spec));
    };

    sim_.events().scheduleAfter(latency, std::move(launch));
    return 0;
}

void
TransferManager::accountDelivery(Bytes requested, Bytes undelivered,
                                 int attempts, const std::string &tag)
{
    ++stats_.completed;
    stats_.bytes_delivered += requested - undelivered;
    if (undelivered > deliveryTolerance(requested, attempts)) {
        ++stats_.conservation_violations;
        warn("transfer '%s' completed %g bytes short of %g requested",
             tag.c_str(), undelivered, requested);
    }
}

void
TransferManager::launchPending(std::uint64_t xid)
{
    auto it = pending_.find(xid);
    if (it == pending_.end())
        return;  // completed while a relaunch was queued
    Pending &p = it->second;
    Route route = cluster_.router().routeThrough(p.src, p.waypoints,
                                                 p.dst, p.flow_key);
    const Bps rate_cap = attemptRateCap(p.rate_cap, p.rate_factor, route);

    FlowSpec spec;
    spec.route = std::move(route);
    spec.bytes = p.remaining;
    spec.rate_cap = rate_cap;
    spec.extra_resources = p.extra_resources;
    spec.tag = p.tag;
    spec.on_complete = [this, xid, epoch = epoch_] {
        auto done_it = pending_.find(xid);
        if (done_it == pending_.end()) {
            // A zero-byte completion scheduled before an abortAll()
            // lands after it; anything else is a bookkeeping bug.
            DSTRAIN_ASSERT(epoch != epoch_,
                           "completion for unknown transfer");
            return;
        }
        Pending &done_p = done_it->second;
        // The completed attempt delivered its whole launch size, so
        // cumulative delivery must equal the original request; any
        // shortfall beyond the scheduler's completion epsilon means a
        // cancel/relaunch lost bytes.
        done_p.delivered += done_p.remaining;
        accountDelivery(done_p.requested,
                        done_p.requested - done_p.delivered,
                        done_p.attempts, done_p.tag);
        std::function<void()> done = std::move(done_p.on_done);
        pending_.erase(done_it);
        if (done)
            done();
    };
    p.flow = flows_.start(std::move(spec));

    // Launched straight into a fault (e.g. the alternate NIC is down
    // too): arm another stranded-flow scan so the bounded retry loop
    // keeps making progress without further capacity changes.
    if (flows_.isActive(p.flow) && flows_.currentRate(p.flow) <= 0.0)
        notifyCapacityChange();
}

void
TransferManager::notifyCapacityChange()
{
    // One notification per fault event, no matter how many links it
    // scaled: FaultInjector batches the per-link capacity changes
    // into a single FlowScheduler::setCapacities() call and then
    // notifies once, and the scheduled-scan flag below coalesces any
    // overlapping notifications into one stranded-flow sweep.
    if (!retry_.enabled || check_scheduled_)
        return;
    check_scheduled_ = true;
    sim_.events().scheduleAfter(retry_.detect_delay, [this] {
        check_scheduled_ = false;
        checkStranded();
    });
}

bool
TransferManager::transferStalled(std::uint64_t xid) const
{
    const auto it = pending_.find(xid);
    if (it == pending_.end())
        return false;
    const Pending &p = it->second;
    return p.flow != 0 && flows_.isActive(p.flow) &&
           flows_.currentRate(p.flow) <= 0.0;
}

Bytes
TransferManager::cancelTransfer(std::uint64_t xid)
{
    auto it = pending_.find(xid);
    if (it == pending_.end())
        return 0.0;
    Pending &p = it->second;
    Bytes remaining = p.remaining;
    if (p.flow != 0 && flows_.isActive(p.flow)) {
        flows_.cancel(p.flow, &remaining);
        p.flow = 0;
    }
    // Same ledger entries as one abortAll() iteration: whatever the
    // attempts moved counts delivered, the remainder aborted, and the
    // completion callback never fires — the caller owns continuation.
    p.delivered += p.remaining - remaining;
    ++stats_.aborted;
    stats_.bytes_aborted += remaining;
    stats_.bytes_delivered += p.delivered;
    pending_.erase(it);
    return remaining;
}

void
TransferManager::checkStranded()
{
    if (resilience_ != nullptr) {
        if (resilience_->inReconvergence()) {
            // Routing has not reconverged: rerouting now would
            // re-resolve onto the same stale trees. Hold the scan
            // until the window closes (the coordinator's cache-flush
            // event is enqueued ahead of this one, FIFO order, so the
            // deferred scan reroutes on fresh state).
            ++resilience_->stats().reconvergence_waits;
            if (!check_scheduled_) {
                check_scheduled_ = true;
                sim_.events().schedule(resilience_->reconvergedAt(),
                                       [this] {
                                           check_scheduled_ = false;
                                           checkStranded();
                                       });
            }
            return;
        }
        // Never reroute through routes cached before the fault.
        resilience_->ensureFresh();
    }
    for (auto &[xid, p] : pending_) {
        if (p.flow == 0 || !flows_.isActive(p.flow))
            continue;  // not yet launched, or between attempts
        if (flows_.currentRate(p.flow) > 0.0)
            continue;  // moving (possibly resumed by a restore)
        if (p.attempts >= retry_.max_retries)
            continue;  // parked: resumes when capacity returns
        Bytes remaining = 0.0;
        flows_.cancel(p.flow, &remaining);
        p.flow = 0;
        p.delivered += p.remaining - remaining;
        p.remaining = remaining;
        p.attempts += 1;
        p.waypoints =
            alternateWaypoints(p.src, p.dst, p.waypoints, p.flow_key);
        ++stats_.reroutes;
        const SimTime delay =
            retry_.backoff *
            static_cast<double>(1u << (p.attempts - 1));
        const std::uint64_t id = xid;
        sim_.events().scheduleAfter(
            delay, [this, id] { launchPending(id); });
    }
}

std::size_t
TransferManager::abortAll()
{
    // Iterate in xid order (pending_ is an ordered map) so the flow
    // cancellations — and therefore the scheduler's telemetry log
    // writes — land deterministically.
    std::size_t n = 0;
    for (auto &[xid, p] : pending_) {
        Bytes remaining = p.remaining;
        if (p.flow != 0 && flows_.isActive(p.flow)) {
            flows_.cancel(p.flow, &remaining);
            p.flow = 0;
        }
        p.delivered += p.remaining - remaining;
        ++stats_.aborted;
        stats_.bytes_aborted += remaining;
        stats_.bytes_delivered += p.delivered;
        ++n;
    }
    pending_.clear();
    // Invalidate latency-delayed launches and zero-byte completions
    // scheduled before the abort; they check the epoch and bail.
    ++epoch_;
    // Non-retry transfers keep no per-transfer state (by design: the
    // fault-free hot path has zero bookkeeping), so account whatever
    // is still in flight in aggregate. Their latency-delayed launches
    // and completion callbacks die on the epoch bump, and the owner
    // kills their active flows via FlowScheduler::cancelAll(), so
    // every byte not delivered by now — including partial progress of
    // a cancelled flow — is discarded.
    const std::uint64_t untracked =
        stats_.started - stats_.completed - stats_.aborted;
    if (untracked > 0) {
        stats_.aborted += untracked;
        stats_.bytes_aborted =
            stats_.bytes_requested - stats_.bytes_delivered;
        n += untracked;
    }
    return n;
}

void
TransferManager::verifyConservation() const
{
    DSTRAIN_ASSERT(pending_.empty(),
                   "%zu transfers still pending at conservation check",
                   pending_.size());
    DSTRAIN_ASSERT(stats_.started == stats_.completed + stats_.aborted,
                   "transfer count leak: %llu started, %llu completed, "
                   "%llu aborted",
                   static_cast<unsigned long long>(stats_.started),
                   static_cast<unsigned long long>(stats_.completed),
                   static_cast<unsigned long long>(stats_.aborted));
    DSTRAIN_ASSERT(stats_.conservation_violations == 0,
                   "%llu transfers delivered short of their request",
                   static_cast<unsigned long long>(
                       stats_.conservation_violations));
    const Bytes balance = stats_.bytes_requested - stats_.bytes_delivered -
                          stats_.bytes_aborted;
    const Bytes tolerance =
        deliveryTolerance(stats_.bytes_requested,
                          static_cast<int>(stats_.reroutes));
    DSTRAIN_ASSERT(balance <= tolerance && balance >= -tolerance,
                   "byte-conservation violation: requested %g != "
                   "delivered %g + aborted %g",
                   stats_.bytes_requested, stats_.bytes_delivered,
                   stats_.bytes_aborted);
}

std::vector<ComponentId>
TransferManager::alternateWaypoints(
    ComponentId src, ComponentId dst,
    const std::vector<ComponentId> &current,
    std::uint64_t flow_key) const
{
    const Topology &topo = cluster_.topology();
    Route failed =
        cluster_.router().routeThrough(src, current, dst, flow_key);
    std::vector<ComponentId> next;
    bool swapped = false;
    for (HalfLinkId hid : failed.hops) {
        const ComponentId to = topo.halfLink(hid).to;
        if (to == dst)
            continue;
        const Component &c = topo.component(to);
        if (c.kind != ComponentKind::Nic)
            continue;
        const std::vector<ComponentId> nics =
            topo.componentsOfKind(ComponentKind::Nic, c.node);
        if (nics.size() < 2) {
            next.push_back(to);
            continue;
        }
        const auto pos = std::find(nics.begin(), nics.end(), to);
        DSTRAIN_ASSERT(pos != nics.end(), "NIC not on its own node");
        const std::size_t i =
            static_cast<std::size_t>(pos - nics.begin());
        next.push_back(nics[(i + 1) % nics.size()]);
        swapped = true;
    }
    // No NIC to fail over to (an intra-node fault): retry as-is and
    // let backoff absorb transient flaps.
    return swapped ? next : current;
}

} // namespace dstrain
