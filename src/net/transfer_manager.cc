/**
 * @file
 * Implementation of the transfer manager.
 */

#include "net/transfer_manager.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace dstrain {

TransferManager::TransferManager(Simulation &sim, Cluster &cluster,
                                 FlowScheduler &flows)
    : sim_(sim), cluster_(cluster), flows_(flows)
{
}

void
TransferManager::start(ComponentId src, ComponentId dst, Bytes bytes,
                       std::function<void()> on_done, TransferOptions opts)
{
    DSTRAIN_ASSERT(src != dst, "transfer from component %d to itself",
                   src);
    Route route;
    if (opts.via == kNoComponent) {
        DSTRAIN_ASSERT(opts.via2 == kNoComponent,
                       "via2 requires via");
        route = cluster_.router().route(src, dst);
    } else if (opts.via2 == kNoComponent) {
        route = cluster_.router().routeVia(src, opts.via, dst);
    } else {
        route = cluster_.router().routeVia2(src, opts.via, opts.via2,
                                            dst);
    }

    ++started_;
    DSTRAIN_ASSERT(opts.rate_factor > 0.0 && opts.rate_factor <= 1.0,
                   "bad rate factor %g", opts.rate_factor);
    Bps rate_cap = opts.rate_cap;
    if (opts.rate_factor < 1.0) {
        const Bps scaled = route.rate_cap * opts.rate_factor;
        rate_cap = rate_cap > 0.0 ? std::min(rate_cap, scaled) : scaled;
    }
    const SimTime latency = route.latency;
    auto launch = [this, route = std::move(route), bytes,
                   on_done = std::move(on_done), rate_cap,
                   extra = std::move(opts.extra_resources),
                   tag = std::move(opts.tag)]() mutable {
        FlowSpec spec;
        spec.route = std::move(route);
        spec.bytes = bytes;
        spec.rate_cap = rate_cap;
        spec.extra_resources = std::move(extra);
        spec.tag = std::move(tag);
        spec.on_complete = [this, on_done = std::move(on_done)] {
            ++completed_;
            if (on_done)
                on_done();
        };
        flows_.start(std::move(spec));
    };

    sim_.events().scheduleAfter(latency, std::move(launch));
}

} // namespace dstrain
