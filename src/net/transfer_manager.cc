/**
 * @file
 * Implementation of the transfer manager.
 */

#include "net/transfer_manager.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace dstrain {

namespace {

/** Per-attempt flow cap: caller's cap merged with the route cap. */
Bps
attemptRateCap(Bps explicit_cap, double rate_factor, const Route &route)
{
    Bps rate_cap = explicit_cap;
    if (rate_factor < 1.0) {
        const Bps scaled = route.rate_cap * rate_factor;
        rate_cap = rate_cap > 0.0 ? std::min(rate_cap, scaled) : scaled;
    }
    return rate_cap;
}

} // namespace

TransferManager::TransferManager(Simulation &sim, Cluster &cluster,
                                 FlowScheduler &flows)
    : sim_(sim), cluster_(cluster), flows_(flows)
{
}

void
TransferManager::start(ComponentId src, ComponentId dst, Bytes bytes,
                       std::function<void()> on_done, TransferOptions opts)
{
    DSTRAIN_ASSERT(src != dst, "transfer from component %d to itself",
                   src);
    DSTRAIN_ASSERT(opts.rate_factor > 0.0 && opts.rate_factor <= 1.0,
                   "bad rate factor %g", opts.rate_factor);
    Route route =
        cluster_.router().routeThrough(src, opts.waypoints, dst);
    const SimTime latency = route.latency;
    ++started_;

    if (retry_.enabled) {
        // Retryable path: keep the full request so a stranded flow
        // can be cancelled, rerouted and relaunched with whatever
        // bytes remain. The route is re-resolved at every launch.
        const std::uint64_t xid = next_xfer_++;
        Pending p;
        p.src = src;
        p.dst = dst;
        p.waypoints = std::move(opts.waypoints);
        p.remaining = bytes;
        p.rate_cap = opts.rate_cap;
        p.rate_factor = opts.rate_factor;
        p.extra_resources = std::move(opts.extra_resources);
        p.tag = std::move(opts.tag);
        p.on_done = std::move(on_done);
        pending_.emplace(xid, std::move(p));
        sim_.events().scheduleAfter(
            latency, [this, xid] { launchPending(xid); });
        return;
    }

    const Bps rate_cap =
        attemptRateCap(opts.rate_cap, opts.rate_factor, route);
    auto launch = [this, route = std::move(route), bytes,
                   on_done = std::move(on_done), rate_cap,
                   extra = std::move(opts.extra_resources),
                   tag = std::move(opts.tag)]() mutable {
        FlowSpec spec;
        spec.route = std::move(route);
        spec.bytes = bytes;
        spec.rate_cap = rate_cap;
        spec.extra_resources = std::move(extra);
        spec.tag = std::move(tag);
        spec.on_complete = [this, on_done = std::move(on_done)] {
            ++completed_;
            if (on_done)
                on_done();
        };
        flows_.start(std::move(spec));
    };

    sim_.events().scheduleAfter(latency, std::move(launch));
}

void
TransferManager::launchPending(std::uint64_t xid)
{
    auto it = pending_.find(xid);
    if (it == pending_.end())
        return;  // completed while a relaunch was queued
    Pending &p = it->second;
    Route route =
        cluster_.router().routeThrough(p.src, p.waypoints, p.dst);
    const Bps rate_cap = attemptRateCap(p.rate_cap, p.rate_factor, route);

    FlowSpec spec;
    spec.route = std::move(route);
    spec.bytes = p.remaining;
    spec.rate_cap = rate_cap;
    spec.extra_resources = p.extra_resources;
    spec.tag = p.tag;
    spec.on_complete = [this, xid] {
        auto done_it = pending_.find(xid);
        DSTRAIN_ASSERT(done_it != pending_.end(),
                       "completion for unknown transfer");
        std::function<void()> done = std::move(done_it->second.on_done);
        pending_.erase(done_it);
        ++completed_;
        if (done)
            done();
    };
    p.flow = flows_.start(std::move(spec));

    // Launched straight into a fault (e.g. the alternate NIC is down
    // too): arm another stranded-flow scan so the bounded retry loop
    // keeps making progress without further capacity changes.
    if (flows_.isActive(p.flow) && flows_.currentRate(p.flow) <= 0.0)
        notifyCapacityChange();
}

void
TransferManager::notifyCapacityChange()
{
    if (!retry_.enabled || check_scheduled_)
        return;
    check_scheduled_ = true;
    sim_.events().scheduleAfter(retry_.detect_delay, [this] {
        check_scheduled_ = false;
        checkStranded();
    });
}

void
TransferManager::checkStranded()
{
    for (auto &[xid, p] : pending_) {
        if (p.flow == 0 || !flows_.isActive(p.flow))
            continue;  // not yet launched, or between attempts
        if (flows_.currentRate(p.flow) > 0.0)
            continue;  // moving (possibly resumed by a restore)
        if (p.attempts >= retry_.max_retries)
            continue;  // parked: resumes when capacity returns
        Bytes remaining = 0.0;
        flows_.cancel(p.flow, &remaining);
        p.flow = 0;
        p.remaining = remaining;
        p.attempts += 1;
        p.waypoints = alternateWaypoints(p.src, p.dst, p.waypoints);
        ++reroutes_;
        const SimTime delay =
            retry_.backoff *
            static_cast<double>(1u << (p.attempts - 1));
        const std::uint64_t id = xid;
        sim_.events().scheduleAfter(
            delay, [this, id] { launchPending(id); });
    }
}

std::vector<ComponentId>
TransferManager::alternateWaypoints(
    ComponentId src, ComponentId dst,
    const std::vector<ComponentId> &current) const
{
    const Topology &topo = cluster_.topology();
    Route failed = cluster_.router().routeThrough(src, current, dst);
    std::vector<ComponentId> next;
    bool swapped = false;
    for (HalfLinkId hid : failed.hops) {
        const ComponentId to = topo.halfLink(hid).to;
        if (to == dst)
            continue;
        const Component &c = topo.component(to);
        if (c.kind != ComponentKind::Nic)
            continue;
        const std::vector<ComponentId> nics =
            topo.componentsOfKind(ComponentKind::Nic, c.node);
        if (nics.size() < 2) {
            next.push_back(to);
            continue;
        }
        const auto pos = std::find(nics.begin(), nics.end(), to);
        DSTRAIN_ASSERT(pos != nics.end(), "NIC not on its own node");
        const std::size_t i =
            static_cast<std::size_t>(pos - nics.begin());
        next.push_back(nics[(i + 1) % nics.size()]);
        swapped = true;
    }
    // No NIC to fail over to (an intra-node fault): retry as-is and
    // let backoff absorb transient flaps.
    return swapped ? next : current;
}

} // namespace dstrain
