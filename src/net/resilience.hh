/**
 * @file
 * The degraded-mode resilience layer: topology-change notification,
 * routing reconvergence and the counters that summarize how a run
 * coped with a damaged fabric.
 *
 * Healthy-fabric runs route on per-source BFS trees and ECMP path
 * enumerations the Router caches once and reuses forever — correct
 * because routes are computed from nominal capacities and faults are
 * modeled as live contention. Under *hard* cuts (linkdown, switch
 * kill) that model over-reports goodput: real fabrics re-converge
 * (BGP/LFA, typically milliseconds) and then steer traffic around the
 * dead link, while the cached trees would keep parking flows on it
 * forever.
 *
 * The ResilienceCoordinator models exactly that control-plane loop:
 *
 *  - FaultInjector publishes every capacity change on a
 *    TopologyChangeBus.
 *  - The coordinator holds the change for a configurable
 *    reconvergence delay (new flows keep taking stale-or-parked
 *    routes, like a real fabric between failure and FIB update),
 *    then invalidates the Router's caches in one shot.
 *  - With `Router::setAvoidDeadLinks(true)`, post-invalidation
 *    route computations skip capacity-zero edges, so rerouted and
 *    new flows steer around the cut. If a destination is fully
 *    partitioned the router falls back to the stale shortest path
 *    and the flow parks — never a panic.
 *
 * Everything here is opt-in (`ResilienceConfig::enabled`); a run
 * without it is bit-identical to the pre-resilience tree, which the
 * fingerprint regression suite pins.
 */

#ifndef DSTRAIN_NET_RESILIENCE_HH
#define DSTRAIN_NET_RESILIENCE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/routing.hh"
#include "sim/simulation.hh"
#include "util/config_error.hh"
#include "util/units.hh"

namespace dstrain {

/** Knobs of the degraded-mode resilience layer (all opt-in). */
struct ResilienceConfig {
    /** Master switch; off = bit-identical legacy behavior. */
    bool enabled = false;

    /**
     * Routing-reconvergence delay: how long after a capacity change
     * the router keeps serving stale routes before its caches are
     * invalidated (models BGP/LFA convergence, O(ms) on modern
     * fabrics). Changes arriving inside an open window extend it.
     */
    SimTime reconvergence_delay = 2e-3;

    /**
     * Per-round progress timeout for collectives (the NCCL-watchdog
     * model): a round whose transfers have made no progress for this
     * long is aborted byte-conservingly and relaunched — with only
     * the undelivered remainder — on reconverged routes. 0 disables
     * the watchdog.
     */
    SimTime collective_timeout = 25e-3;

    /**
     * Watchdog rescue attempts per collective invocation before it
     * gives up and lets the remaining flows park (they resume if the
     * fault restores). Bounds watchdog work on a partitioned fabric.
     */
    int max_collective_resumes = 16;

    /**
     * Re-resolve an algorithm whose structural assumption is cut
     * (hierarchical with a dead intra-node NVLink domain; tree after
     * rank loss breaks the pow2 group) through the Auto policy's
     * fallback chain instead of panicking mid-schedule.
     */
    bool collective_fallback = true;

    /** Structural checks; empty result = valid. */
    std::vector<ConfigError> validate() const;
};

/**
 * What the resilience layer did during a run. All counters are zero
 * on a healthy fabric — the report fingerprint only grows a
 * resilience section when one of them fires, so enabling resilience
 * on a clean run stays bit-identical.
 */
struct ResilienceStats {
    /** Router cache flushes after reconvergence windows closed. */
    std::uint64_t route_invalidations = 0;

    /** Reroute scans deferred to the end of a convergence window. */
    std::uint64_t reconvergence_waits = 0;

    /** Collective watchdog firings that rescued stalled rounds. */
    std::uint64_t collective_timeouts = 0;

    /** Algorithms re-resolved because their structure was cut. */
    std::uint64_t collective_fallbacks = 0;

    /** Communicator groups reformed over surviving ranks. */
    std::uint64_t comm_shrinks = 0;

    /** True when any counter fired (gates the report section). */
    bool any() const
    {
        return route_invalidations || reconvergence_waits ||
               collective_timeouts || collective_fallbacks ||
               comm_shrinks;
    }
};

/**
 * Fan-out point for topology mutations. The FaultInjector publishes
 * after every batched capacity update (and hard fault); subscribers
 * — today the ResilienceCoordinator, tomorrow e.g. an adaptive
 * collective planner — react in subscription order.
 */
class TopologyChangeBus
{
  public:
    /** @p rids: the resources whose capacity just changed. */
    using Listener = std::function<void(const std::vector<ResourceId> &)>;

    /** Register a listener (called in subscription order). */
    void subscribe(Listener listener)
    {
        listeners_.push_back(std::move(listener));
    }

    /** Notify all listeners of a capacity change on @p rids. */
    void publish(const std::vector<ResourceId> &rids) const
    {
        for (const Listener &l : listeners_)
            l(rids);
    }

    /** Number of registered listeners (diagnostic). */
    std::size_t listenerCount() const { return listeners_.size(); }

  private:
    std::vector<Listener> listeners_;
};

/**
 * Drives the reconvergence model: collects topology-change
 * notifications, holds them for the configured delay, then
 * invalidates the router caches exactly once per window.
 */
class ResilienceCoordinator
{
  public:
    /**
     * Wire the coordinator to @p sim's clock and @p router's caches
     * and subscribe it to its own bus. Callers still need to enable
     * dead-link avoidance (`router.setAvoidDeadLinks(true)`) and
     * point the FaultInjector at `bus()`.
     */
    ResilienceCoordinator(Simulation &sim, const Router &router,
                          ResilienceConfig config);

    ResilienceCoordinator(const ResilienceCoordinator &) = delete;
    ResilienceCoordinator &operator=(const ResilienceCoordinator &) =
        delete;

    /** The notification bus this coordinator listens on. */
    TopologyChangeBus &bus() { return bus_; }

    /** Active config. */
    const ResilienceConfig &config() const { return cfg_; }

    /**
     * True while a reconvergence window is open: a capacity change
     * happened and the router still serves pre-change routes.
     */
    bool inReconvergence() const;

    /**
     * When the currently-open window closes; `now` when none is
     * open. Transfer retries scheduled at this instant run after the
     * cache flush (the flush event is enqueued first, FIFO order).
     */
    SimTime reconvergedAt() const;

    /**
     * Immediately flush the router caches if a change is pending —
     * the stranded-flow scan calls this before any reroute attempt
     * so a retried flow can never relaunch onto a route that was
     * cached before the fault.
     */
    void ensureFresh();

    /** Mutable counters (incremented by the cooperating layers). */
    ResilienceStats &stats() { return stats_; }
    const ResilienceStats &stats() const { return stats_; }

  private:
    /** Bus callback: open/extend the window, arm the flush event. */
    void onTopologyChange();

    /** Flush-event body: re-arm if the window moved, else flush. */
    void maybeInvalidate();

    /** Flush the router caches and close the window. */
    void invalidate();

    Simulation &sim_;
    const Router &router_;
    ResilienceConfig cfg_;
    TopologyChangeBus bus_;
    ResilienceStats stats_;

    /** A change is pending and the caches are stale. */
    bool dirty_ = false;

    /** A maybeInvalidate event is armed. */
    bool flush_armed_ = false;

    /** End of the open reconvergence window (valid while dirty_). */
    SimTime converging_until_ = 0.0;
};

} // namespace dstrain

#endif // DSTRAIN_NET_RESILIENCE_HH
