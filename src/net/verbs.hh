/**
 * @file
 * RDMA verbs latency/bandwidth model over the simulated RoCE fabric,
 * the synthetic equivalent of the paper's OFED perftest runs
 * (Sec. III-C, Fig. 3 and Fig. 4).
 *
 * The latency model is analytic: a per-op base latency plus the
 * serialization term over the effective bandwidth of the path. The
 * cross-socket case applies the measured IOD penalty — both a fixed
 * small-message inflation (paper: <6 us same-socket vs <40 us
 * cross-socket below 64 kB, i.e. roughly 7x) and the SerDes
 * bandwidth degradation of hw/serdes.hh for the serialization term.
 */

#ifndef DSTRAIN_NET_VERBS_HH
#define DSTRAIN_NET_VERBS_HH

#include "hw/node_builder.hh"
#include "util/units.hh"

namespace dstrain {

/** The three verbs the paper's latency test exercises. */
enum class VerbsOp {
    Send,       ///< channel semantic SEND
    RdmaRead,   ///< memory semantic RDMA READ (round trip)
    RdmaWrite,  ///< memory semantic RDMA WRITE
};

/** Human-readable op name. */
const char *verbsOpName(VerbsOp op);

/** Placement of the test buffer relative to the NIC's socket. */
enum class SocketPlacement {
    SameSocket,   ///< buffer and NIC on the same CPU
    CrossSocket,  ///< buffer behind the xGMI links
};

/**
 * Average one-op latency for a message of @p bytes between two nodes
 * over RoCE.
 *
 * @param op        the verb.
 * @param bytes     message size.
 * @param placement same- or cross-socket buffer placement.
 * @param spec      node hardware spec (for link rates/latencies).
 */
SimTime verbsLatency(VerbsOp op, Bytes bytes, SocketPlacement placement,
                     const NodeSpec &spec);

/**
 * Effective unidirectional bandwidth of a single verbs stream for the
 * given placement (used by the latency model's serialization term and
 * by tests).
 */
Bps verbsStreamBandwidth(SocketPlacement placement, bool gpu_direct,
                         const NodeSpec &spec);

} // namespace dstrain

#endif // DSTRAIN_NET_VERBS_HH
