/**
 * @file
 * TransferManager: point-to-point transfer facade over the router and
 * the flow scheduler.
 *
 * A transfer is "send `bytes` from component A to component B":
 * the manager resolves the route, applies the route latency as a
 * start delay, starts the flow, and invokes the completion callback.
 * Collectives, offload staging and NVMe IO are all built from this.
 *
 * With a RetryPolicy enabled (the fault-injection path), the manager
 * additionally tracks every in-flight transfer and recovers flows
 * stranded on a downed route: a stalled flow is cancelled, rerouted
 * through the node's alternate NIC, and relaunched with the remaining
 * bytes under bounded exponential backoff (DESIGN.md "Fault model").
 */

#ifndef DSTRAIN_NET_TRANSFER_MANAGER_HH
#define DSTRAIN_NET_TRANSFER_MANAGER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hw/cluster.hh"
#include "net/flow_scheduler.hh"
#include "sim/simulation.hh"

namespace dstrain {

class ResilienceCoordinator;

/** Options for TransferManager::start(). */
struct TransferOptions {
    /**
     * Force the route through these components, in order (e.g. pin
     * traffic to a local/remote NIC pair for multi-channel
     * collectives). Empty = shortest path.
     */
    std::vector<ComponentId> waypoints;

    /** Extra per-flow rate cap (0 = none); see FlowSpec::rate_cap. */
    Bps rate_cap = 0.0;

    /**
     * Multiplier on the route's uncontended rate cap (<= 1.0):
     * models transfers that cannot saturate the path (e.g. ZeRO-3's
     * many small per-parameter gathers).
     */
    double rate_factor = 1.0;

    /** Extra shared resources; see FlowSpec::extra_resources. */
    std::vector<ResourceId> extra_resources;

    /**
     * ECMP flow key: flows with different keys between the same
     * endpoints may take different equal-cost paths on multipath
     * fabrics (collectives pass the channel index). Deterministic:
     * the same key always selects the same path.
     */
    std::uint64_t flow_key = 0;

    /** Debug label. */
    std::string tag;
};

/**
 * Recovery policy for transfers stranded by a link fault. Disabled by
 * default: without faults there is nothing to recover from and the
 * manager keeps zero per-transfer state.
 */
struct RetryPolicy {
    /** Master switch; the fault injector enables it. */
    bool enabled = false;

    /**
     * How long a flow must sit at rate zero before it is declared
     * stranded (models failure-detection time, e.g. RoCE CNP/timeout).
     */
    SimTime detect_delay = 1e-3;

    /** Base reroute backoff; doubles on every further attempt. */
    SimTime backoff = 2e-3;

    /**
     * Reroute attempts per transfer before it is parked: a parked
     * flow stays registered at rate zero and resumes on the original
     * path when the fault clears.
     */
    int max_retries = 3;
};

/**
 * Starts point-to-point transfers on the simulated fabric.
 */
class TransferManager
{
  public:
    /**
     * Byte-accounting and work counters. The conservation invariant
     * checked after every run (see verifyConservation()) is
     *
     *   bytes_requested == bytes_delivered + bytes_aborted
     *
     * across every cancel/reroute/park-resume path, within a small
     * completion-epsilon tolerance per transfer.
     */
    struct Stats {
        std::uint64_t started = 0;    ///< transfers started
        std::uint64_t completed = 0;  ///< transfers fully delivered
        std::uint64_t aborted = 0;    ///< transfers killed by abortAll()
        std::uint64_t reroutes = 0;   ///< stranded-flow reroute attempts
        Bytes bytes_requested = 0.0;  ///< total bytes asked for
        Bytes bytes_delivered = 0.0;  ///< bytes that actually landed
        Bytes bytes_aborted = 0.0;    ///< bytes discarded by abortAll()
        /** Transfers whose delivered bytes missed the requested. */
        std::uint64_t conservation_violations = 0;
    };

    /** All references must outlive the manager. */
    TransferManager(Simulation &sim, Cluster &cluster,
                    FlowScheduler &flows);

    TransferManager(const TransferManager &) = delete;
    TransferManager &operator=(const TransferManager &) = delete;

    /**
     * Transfer @p bytes from @p src to @p dst; @p on_done fires when
     * the last byte lands.
     *
     * @return the transfer id when the retry policy is enabled (a
     *         handle for transferStalled()/cancelTransfer()), 0 on
     *         the stateless fault-free path.
     */
    std::uint64_t start(ComponentId src, ComponentId dst, Bytes bytes,
                        std::function<void()> on_done,
                        TransferOptions opts = {});

    /** Install the stranded-flow recovery policy (fault injection). */
    void configureRetry(const RetryPolicy &policy) { retry_ = policy; }

    /** The active recovery policy. */
    const RetryPolicy &retryPolicy() const { return retry_; }

    /**
     * Attach the degraded-mode resilience coordinator
     * (net/resilience.hh). The stranded-flow scan then defers
     * reroutes to the end of an open routing-reconvergence window
     * and force-flushes the router's route caches before any reroute
     * attempt, so a retried flow can never relaunch onto a route
     * cached before the fault. nullptr detaches.
     */
    void setResilience(ResilienceCoordinator *rc) { resilience_ = rc; }

    /** The attached resilience coordinator (may be nullptr). */
    ResilienceCoordinator *resilience() const { return resilience_; }

    /**
     * Is transfer @p xid currently launched and moving zero bytes/s?
     * False for unknown ids, transfers between attempts, and moving
     * flows. The collective watchdog's progress probe.
     */
    bool transferStalled(std::uint64_t xid) const;

    /**
     * Byte-conservingly abort one in-flight transfer: cancel its
     * flow, account delivered-so-far as delivered and the remainder
     * as aborted, and drop the bookkeeping *without* firing the
     * completion callback. The collective watchdog uses this to
     * replace a stalled hop with a fresh transfer of the remaining
     * bytes on reconverged routes.
     *
     * @return the undelivered remainder (0 for unknown ids).
     */
    Bytes cancelTransfer(std::uint64_t xid);

    /**
     * The abort epoch: bumped by abortAll(). Externally scheduled
     * continuations (the collective watchdog) capture it to detect a
     * hard-fault abort between scheduling and firing.
     */
    std::uint64_t abortEpoch() const { return epoch_; }

    /**
     * Fault-injector notification that some resource capacity just
     * changed. Schedules (coalesced) a stranded-flow scan after the
     * policy's detect_delay. No-op while retries are disabled.
     */
    void notifyCapacityChange();

    /**
     * Abort every in-flight transfer: cancel the underlying flows
     * without completion callbacks, drop the retry bookkeeping, and
     * advance the abort epoch so latency-delayed launches and
     * stranded-flow scans scheduled before the abort become no-ops.
     * The hard-failure recovery path; aborted bytes are accounted in
     * stats().bytes_aborted.
     * @return the number of transfers aborted.
     */
    std::size_t abortAll();

    /**
     * Check the per-transfer byte-conservation invariant after a run
     * has drained: every started transfer completed or aborted, and
     * requested == delivered + aborted bytes within tolerance.
     * DSTRAIN_ASSERTs (all build types) on violation.
     */
    void verifyConservation() const;

    /** Byte-accounting and work counters since construction. */
    const Stats &stats() const { return stats_; }

    /** Number of transfers started since construction. */
    std::uint64_t startedCount() const { return stats_.started; }

    /** Number of transfers completed since construction. */
    std::uint64_t completedCount() const { return stats_.completed; }

    /** Transfers in flight (started, not completed or aborted). */
    std::uint64_t inFlight() const
    {
        return stats_.started - stats_.completed - stats_.aborted;
    }

    /** Reroute attempts performed since construction. */
    std::uint64_t rerouteCount() const { return stats_.reroutes; }

    /** The underlying flow scheduler. */
    FlowScheduler &flows() { return flows_; }

    /** The cluster (router/topology access for callers). */
    Cluster &cluster() { return cluster_; }

    /** The simulation context. */
    Simulation &sim() { return sim_; }

  private:
    /** In-flight bookkeeping for one retryable transfer. */
    struct Pending {
        ComponentId src = kNoComponent;
        ComponentId dst = kNoComponent;
        std::vector<ComponentId> waypoints;
        Bytes requested = 0.0;        ///< original transfer size
        Bytes remaining = 0.0;        ///< bytes left to move
        Bytes delivered = 0.0;        ///< landed by earlier attempts
        Bps rate_cap = 0.0;           ///< caller's explicit cap
        double rate_factor = 1.0;
        std::vector<ResourceId> extra_resources;
        std::uint64_t flow_key = 0;   ///< ECMP key of every attempt
        std::string tag;
        std::function<void()> on_done;
        FlowId flow = 0;              ///< 0 = not currently flowing
        int attempts = 0;             ///< reroutes performed so far
    };

    /** Record a completed delivery and check byte conservation. */
    void accountDelivery(Bytes requested, Bytes undelivered,
                         int attempts, const std::string &tag);

    /** Resolve the route and start the flow for transfer @p xid. */
    void launchPending(std::uint64_t xid);

    /** Scan for stranded flows and reroute them (bounded). */
    void checkStranded();

    /**
     * Waypoints for the next attempt: each intermediate NIC on the
     * current route swapped for the next NIC of the same node. When
     * no alternate NIC exists the current waypoints are returned
     * (plain retry on the same path).
     */
    std::vector<ComponentId> alternateWaypoints(
        ComponentId src, ComponentId dst,
        const std::vector<ComponentId> &current,
        std::uint64_t flow_key) const;

    Simulation &sim_;
    Cluster &cluster_;
    FlowScheduler &flows_;
    Stats stats_;
    RetryPolicy retry_;
    ResilienceCoordinator *resilience_ = nullptr;
    /** Ordered by transfer id so recovery scans are deterministic. */
    std::map<std::uint64_t, Pending> pending_;
    std::uint64_t next_xfer_ = 1;
    /** Bumped by abortAll(); stale scheduled work checks it. */
    std::uint64_t epoch_ = 0;
    bool check_scheduled_ = false;
};

} // namespace dstrain

#endif // DSTRAIN_NET_TRANSFER_MANAGER_HH
