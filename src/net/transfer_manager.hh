/**
 * @file
 * TransferManager: point-to-point transfer facade over the router and
 * the flow scheduler.
 *
 * A transfer is "send `bytes` from component A to component B":
 * the manager resolves the route, applies the route latency as a
 * start delay, starts the flow, and invokes the completion callback.
 * Collectives, offload staging and NVMe IO are all built from this.
 */

#ifndef DSTRAIN_NET_TRANSFER_MANAGER_HH
#define DSTRAIN_NET_TRANSFER_MANAGER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "hw/cluster.hh"
#include "net/flow_scheduler.hh"
#include "sim/simulation.hh"

namespace dstrain {

/** Options for TransferManager::start(). */
struct TransferOptions {
    /**
     * Force the route through this component (e.g. pin traffic to a
     * specific NIC for multi-channel collectives). kNoComponent =
     * shortest path.
     */
    ComponentId via = kNoComponent;

    /** Optional second waypoint (after `via`), e.g. the remote NIC. */
    ComponentId via2 = kNoComponent;

    /** Extra per-flow rate cap (0 = none); see FlowSpec::rate_cap. */
    Bps rate_cap = 0.0;

    /**
     * Multiplier on the route's uncontended rate cap (<= 1.0):
     * models transfers that cannot saturate the path (e.g. ZeRO-3's
     * many small per-parameter gathers).
     */
    double rate_factor = 1.0;

    /** Extra shared resources; see FlowSpec::extra_resources. */
    std::vector<ResourceId> extra_resources;

    /** Debug label. */
    std::string tag;
};

/**
 * Starts point-to-point transfers on the simulated fabric.
 */
class TransferManager
{
  public:
    /** All references must outlive the manager. */
    TransferManager(Simulation &sim, Cluster &cluster,
                    FlowScheduler &flows);

    TransferManager(const TransferManager &) = delete;
    TransferManager &operator=(const TransferManager &) = delete;

    /**
     * Transfer @p bytes from @p src to @p dst; @p on_done fires when
     * the last byte lands.
     */
    void start(ComponentId src, ComponentId dst, Bytes bytes,
               std::function<void()> on_done,
               TransferOptions opts = {});

    /** Number of transfers started since construction. */
    std::uint64_t startedCount() const { return started_; }

    /** Number of transfers completed since construction. */
    std::uint64_t completedCount() const { return completed_; }

    /** Transfers in flight (started, not yet completed). */
    std::uint64_t inFlight() const { return started_ - completed_; }

    /** The underlying flow scheduler. */
    FlowScheduler &flows() { return flows_; }

    /** The cluster (router/topology access for callers). */
    Cluster &cluster() { return cluster_; }

    /** The simulation context. */
    Simulation &sim() { return sim_; }

  private:
    Simulation &sim_;
    Cluster &cluster_;
    FlowScheduler &flows_;
    std::uint64_t started_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace dstrain

#endif // DSTRAIN_NET_TRANSFER_MANAGER_HH
