/**
 * @file
 * Implementation of the verbs latency/bandwidth model.
 */

#include "net/verbs.hh"

#include <algorithm>

#include "hw/serdes.hh"
#include "util/logging.hh"

namespace dstrain {

namespace {

// Base (zero-byte) one-op latencies, same-socket, calibrated to
// typical ConnectX-6 RoCE numbers and the paper's "under 6 us below
// 64 kB" envelope. RDMA READ pays a full round trip.
constexpr SimTime kSendBase = 1.7e-6;
constexpr SimTime kWriteBase = 1.4e-6;
constexpr SimTime kReadBase = 3.2e-6;

// Cross-socket inflation of the base latency (paper Fig. 3: roughly
// 7x for small messages — request/response descriptors cross the IOD
// and the xGMI fabric multiple times per op).
constexpr double kCrossSocketBaseMult = 7.0;

} // namespace

const char *
verbsOpName(VerbsOp op)
{
    switch (op) {
      case VerbsOp::Send:
        return "SEND";
      case VerbsOp::RdmaRead:
        return "RDMA READ";
      case VerbsOp::RdmaWrite:
        return "RDMA WRITE";
    }
    panic("unknown VerbsOp %d", static_cast<int>(op));
}

Bps
verbsStreamBandwidth(SocketPlacement placement, bool gpu_direct,
                     const NodeSpec &spec)
{
    // Effective line rate after protocol overhead.
    Bps base = spec.roce_per_dir * linkClassEfficiency(LinkClass::Roce);

    // SerDes crossings along the path, per hw/serdes.hh:
    //  - CPU same-socket: DRAM -> SerDes, no crossing.
    //  - CPU cross-socket: one xGMI->PCIe crossing.
    //  - GPU same-socket: one PCIe->PCIe crossing (GPUDirect).
    //  - GPU cross-socket: PCIe->xGMI plus xGMI->PCIe.
    // End-to-end paths cross the IOD on both ends (see hw/serdes.cc).
    std::vector<SerdesCrossing> crossings;
    if (gpu_direct && placement == SocketPlacement::SameSocket) {
        crossings.push_back({SerdesSide::Pcie, SerdesSide::Pcie});
        crossings.push_back({SerdesSide::Pcie, SerdesSide::Pcie});
    } else if (!gpu_direct && placement == SocketPlacement::CrossSocket) {
        crossings.push_back({SerdesSide::Xgmi, SerdesSide::Pcie});
        crossings.push_back({SerdesSide::Pcie, SerdesSide::Xgmi});
    } else if (gpu_direct && placement == SocketPlacement::CrossSocket) {
        crossings.push_back({SerdesSide::Pcie, SerdesSide::Xgmi});
        crossings.push_back({SerdesSide::Xgmi, SerdesSide::Pcie});
        crossings.push_back({SerdesSide::Pcie, SerdesSide::Xgmi});
        crossings.push_back({SerdesSide::Xgmi, SerdesSide::Pcie});
    }
    // Mirror the routing rule: the degradation applies to the
    // SerDes-attached PCIe hop, and the stream runs at the slower of
    // that and the RoCE line rate.
    const Bps pcie_eff =
        spec.pcie_x16 * linkClassEfficiency(LinkClass::PcieNic);
    if (crossings.empty())
        return base;
    return std::min(base, pcie_eff * serdesDegradation(crossings));
}

SimTime
verbsLatency(VerbsOp op, Bytes bytes, SocketPlacement placement,
             const NodeSpec &spec)
{
    DSTRAIN_ASSERT(bytes >= 0.0, "negative message size");
    SimTime base = 0.0;
    double trips = 1.0;
    switch (op) {
      case VerbsOp::Send:
        base = kSendBase;
        break;
      case VerbsOp::RdmaWrite:
        base = kWriteBase;
        break;
      case VerbsOp::RdmaRead:
        base = kReadBase;
        trips = 1.0;  // response carries the payload; base covers RTT
        break;
    }
    if (placement == SocketPlacement::CrossSocket)
        base *= kCrossSocketBaseMult;

    const Bps bw = verbsStreamBandwidth(placement, /*gpu_direct=*/false,
                                        spec);
    return base + trips * bytes / bw;
}

} // namespace dstrain
