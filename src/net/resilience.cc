#include "net/resilience.hh"

namespace dstrain {

std::vector<ConfigError>
ResilienceConfig::validate() const
{
    std::vector<ConfigError> errors;
    if (!(reconvergence_delay >= 0.0))
        errors.push_back({"resilience.reconvergence_delay",
                          "must be >= 0"});
    if (!(collective_timeout >= 0.0))
        errors.push_back({"resilience.collective_timeout",
                          "must be >= 0 (0 disables the watchdog)"});
    if (max_collective_resumes < 0)
        errors.push_back({"resilience.max_collective_resumes",
                          "must be >= 0"});
    return errors;
}

ResilienceCoordinator::ResilienceCoordinator(Simulation &sim,
                                             const Router &router,
                                             ResilienceConfig config)
    : sim_(sim), router_(router), cfg_(std::move(config))
{
    bus_.subscribe(
        [this](const std::vector<ResourceId> &) { onTopologyChange(); });
}

bool
ResilienceCoordinator::inReconvergence() const
{
    return dirty_ && sim_.now() < converging_until_;
}

SimTime
ResilienceCoordinator::reconvergedAt() const
{
    return inReconvergence() ? converging_until_ : sim_.now();
}

void
ResilienceCoordinator::onTopologyChange()
{
    const SimTime until = sim_.now() + cfg_.reconvergence_delay;
    converging_until_ = dirty_ ? std::max(converging_until_, until)
                               : until;
    dirty_ = true;
    if (!flush_armed_) {
        flush_armed_ = true;
        sim_.events().schedule(converging_until_,
                               [this] { maybeInvalidate(); });
    }
}

void
ResilienceCoordinator::maybeInvalidate()
{
    flush_armed_ = false;
    if (!dirty_)
        return;  // ensureFresh() already flushed
    if (sim_.now() < converging_until_) {
        // A later change extended the window past this event; re-arm
        // at the new end.
        flush_armed_ = true;
        sim_.events().schedule(converging_until_,
                               [this] { maybeInvalidate(); });
        return;
    }
    invalidate();
}

void
ResilienceCoordinator::ensureFresh()
{
    if (dirty_)
        invalidate();
}

void
ResilienceCoordinator::invalidate()
{
    router_.invalidateRouteCaches();
    ++stats_.route_invalidations;
    dirty_ = false;
}

} // namespace dstrain
