/**
 * @file
 * Implementation of the RoCE stress test.
 */

#include "net/stress_test.hh"

#include <memory>

#include "net/transfer_manager.hh"
#include "util/logging.hh"

namespace dstrain {

namespace {

/**
 * Keep a stream alive by restarting a large transfer on completion
 * until the deadline passes.
 */
void
sustainStream(TransferManager &tm, ComponentId src, ComponentId dst,
              ComponentId via, ComponentId via2, SimTime deadline,
              const std::string &tag)
{
    if (tm.sim().now() >= deadline)
        return;
    // Large-but-finite messages approximate perftest's back-to-back
    // posting; 256 MB keeps the event count low while re-planning
    // often enough for the fair-share model.
    const Bytes chunk = 256e6;
    TransferOptions opts;
    opts.waypoints = {via, via2};
    opts.tag = tag;
    tm.start(src, dst, chunk,
             [&tm, src, dst, via, via2, deadline, tag] {
                 sustainStream(tm, src, dst, via, via2, deadline, tag);
             },
             std::move(opts));
}

} // namespace

StressResult
runRoceStressTest(const StressConfig &cfg)
{
    ClusterSpec spec;
    spec.nodes = 2;
    Simulation sim;
    Cluster cluster(spec);
    FlowScheduler flows(sim, cluster.topology());
    TransferManager tm(sim, cluster, flows);

    const SimTime warmup = 0.2;
    const SimTime deadline = warmup + cfg.duration;

    // Four instances, bidirectional. CPU mode: two per socket, host
    // memory to host memory. GPUDirect: one per GPU.
    for (int node = 0; node < 2; ++node) {
        const int peer = 1 - node;
        const NodeHandles &local = cluster.node(node);
        const NodeHandles &remote = cluster.node(peer);
        if (cfg.gpu_direct) {
            for (std::size_t g = 0; g < local.gpus.size(); ++g) {
                const int socket =
                    gpuSocket(spec.node, static_cast<int>(g));
                const int nic_socket =
                    cfg.cross_socket ? 1 - socket : socket;
                sustainStream(
                    tm, local.gpus[g], remote.gpus[g],
                    local.nics[static_cast<std::size_t>(nic_socket)],
                    remote.nics[static_cast<std::size_t>(nic_socket)],
                    deadline, csprintf("gpu-stress n%d g%zu", node, g));
            }
        } else {
            for (int socket = 0; socket < 2; ++socket) {
                const int nic_socket =
                    cfg.cross_socket ? 1 - socket : socket;
                for (int inst = 0; inst < 2; ++inst) {
                    sustainStream(
                        tm, local.drams[static_cast<std::size_t>(socket)],
                        remote.drams[static_cast<std::size_t>(socket)],
                        local.nics[static_cast<std::size_t>(nic_socket)],
                        remote.nics[static_cast<std::size_t>(nic_socket)],
                        deadline,
                        csprintf("cpu-stress n%d s%d i%d", node, socket,
                                 inst));
                }
            }
        }
    }

    sim.runUntil(deadline);
    sim.run();  // drain in-flight chunks so no flows leak
    flows.finalizeLogs();

    const Topology &topo = cluster.topology();
    StressResult result;
    result.dram = summarizeClassBandwidth(topo, LinkClass::Dram, warmup,
                                          deadline, cfg.bucket);
    result.xgmi = summarizeClassBandwidth(topo, LinkClass::Xgmi, warmup,
                                          deadline, cfg.bucket);
    result.pcie_gpu = summarizeClassBandwidth(topo, LinkClass::PcieGpu,
                                              warmup, deadline,
                                              cfg.bucket);
    result.pcie_nic = summarizeClassBandwidth(topo, LinkClass::PcieNic,
                                              warmup, deadline,
                                              cfg.bucket);
    result.roce = summarizeClassBandwidth(topo, LinkClass::Roce, warmup,
                                          deadline, cfg.bucket);
    // Every NIC on a node, both directions.
    result.roce_theoretical = static_cast<double>(spec.node.nics) * 2.0 *
                              spec.node.roce_per_dir;
    return result;
}

} // namespace dstrain
