/**
 * @file
 * Inter-node bandwidth stress test over the simulated RoCE fabric —
 * the synthetic equivalent of paper Sec. III-C's OFED perftest runs
 * (Fig. 4): four bidirectional test-kernel instances between the two
 * nodes, pinned either to the NIC's own socket (same-socket) or to
 * the neighboring socket (cross-socket), measuring the achieved
 * bandwidth on every interconnect along the way.
 */

#ifndef DSTRAIN_NET_STRESS_TEST_HH
#define DSTRAIN_NET_STRESS_TEST_HH

#include "telemetry/probe.hh"
#include "util/stats.hh"

namespace dstrain {

/** Configuration of one stress run. */
struct StressConfig {
    /** GPUDirect RDMA (buffers in GPU memory) vs host memory. */
    bool gpu_direct = false;

    /** Pin traffic to the neighboring socket's NIC. */
    bool cross_socket = false;

    /** Measured window (after flows are in steady state). */
    SimTime duration = 2.0;

    /** Telemetry bucket width. */
    SimTime bucket = 0.05;
};

/** Per-interconnect results of a stress run. */
struct StressResult {
    BandwidthSummary dram;
    BandwidthSummary xgmi;
    BandwidthSummary pcie_gpu;
    BandwidthSummary pcie_nic;
    BandwidthSummary roce;

    /** Theoretical aggregate bidirectional RoCE bandwidth per node. */
    Bps roce_theoretical = 0.0;

    /** Achieved fraction of theoretical RoCE bandwidth (avg). */
    double roceFraction() const
    {
        return roce_theoretical > 0.0 ? roce.avg / roce_theoretical
                                      : 0.0;
    }
};

/**
 * Run the stress test on a fresh two-node cluster built from the
 * default node template (paper Sec. III-C used two XE8545 nodes).
 *
 * Four bidirectional streams (two per socket for CPU mode, one per
 * GPU for GPUDirect mode) saturate the fabric for cfg.duration.
 */
StressResult runRoceStressTest(const StressConfig &cfg);

} // namespace dstrain

#endif // DSTRAIN_NET_STRESS_TEST_HH
