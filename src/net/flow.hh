/**
 * @file
 * The flow abstraction of the fluid network model.
 *
 * A flow is a point-to-point transfer in progress: a fixed route, a
 * byte count, and a time-varying rate assigned by the scheduler via
 * max-min fair sharing. Flows are the *only* consumers of resource
 * capacity; everything the telemetry layer reports derives from flow
 * rates deposited into resource rate logs.
 */

#ifndef DSTRAIN_NET_FLOW_HH
#define DSTRAIN_NET_FLOW_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "hw/routing.hh"
#include "util/units.hh"

namespace dstrain {

/** Identifies an active flow. */
using FlowId = std::uint64_t;

/** Parameters for starting a flow. */
struct FlowSpec {
    /** The path; must be valid. */
    Route route;

    /** Payload size; zero-byte flows complete immediately. */
    Bytes bytes = 0.0;

    /**
     * Additional per-flow rate cap in Bps (device limits such as
     * NVMe media throughput). 0 means "route cap only".
     */
    Bps rate_cap = 0.0;

    /**
     * Additional shared resources this flow consumes beyond the
     * route's links (e.g. the IOD crossbar for cross-socket storage
     * streams).
     */
    std::vector<ResourceId> extra_resources;

    /** Invoked (once) when the last byte arrives. */
    std::function<void()> on_complete;

    /** Debugging label. */
    std::string tag;
};

/** finish_at value for flows that are not progressing. */
constexpr SimTime kFlowNeverFinishes =
    std::numeric_limits<SimTime>::infinity();

/** Internal representation of an active flow (scheduler-owned). */
struct Flow {
    FlowId id = 0;
    std::vector<ResourceId> resources;  ///< deduplicated route resources
    /** Scheduler bookkeeping: this flow's index inside each crossed
     * resource's crossing-flow list, parallel to `resources`. */
    std::vector<std::uint32_t> res_pos;
    /**
     * Bytes left as of `anchor`. The scheduler keeps (anchor,
     * remaining) exact and settles a flow — one multiply-subtract
     * over the whole constant-rate span — only when its rate
     * changes or its remaining is observed, never piecewise at
     * unrelated events.
     */
    Bytes remaining = 0.0;
    SimTime anchor = 0.0;  ///< time `remaining` was last made exact
    /**
     * Predicted completion time, anchor + remaining / rate, kept in
     * the scheduler's completion index; kFlowNeverFinishes while the
     * flow is rate-less (stalled or mid-batch).
     */
    SimTime finish_at = kFlowNeverFinishes;
    Bps rate = 0.0;        ///< current assigned rate
    Bps cap = 0.0;         ///< min(route cap, spec cap)
    bool stalled = false;  ///< parked: every crossed link at zero capacity
    std::function<void()> on_complete;
    std::string tag;
};

} // namespace dstrain

#endif // DSTRAIN_NET_FLOW_HH
