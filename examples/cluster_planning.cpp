/**
 * @file
 * Cluster planning: compare horizontal scaling (a second node) with
 * vertical scaling (CPU/NVMe offload on one node) for a target model
 * size — the decision the paper's Sec. V motivates. The example also
 * shows how to customize the hardware spec (a cheaper cluster with
 * 100 Gbps NICs).
 *
 * Run:  build/examples/cluster_planning [billions]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/presets.hh"
#include "core/report.hh"

using namespace dstrain;

namespace {

ExperimentReport
runCase(const char *label, ExperimentConfig cfg)
{
    Experiment exp(std::move(cfg));
    ExperimentReport report = exp.run();
    std::cout << "  [" << label << "] " << summarizeReport(report)
              << "\n";
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    const double billions = argc > 1 ? std::atof(argv[1]) : 11.4;
    std::cout << "Planning for a " << billions
              << "B-parameter GPT-2-like model\n\n";

    std::vector<ExperimentReport> reports;

    std::cout << "Horizontal scaling (two nodes over RoCE):\n";
    reports.push_back(runCase(
        "2n Megatron", paperExperiment(2, paperMegatron(2), billions)));
    reports.push_back(runCase(
        "2n ZeRO-3", paperExperiment(2, StrategyConfig::zero(3),
                                     billions)));

    std::cout << "\nVertical scaling (one node, offloading):\n";
    reports.push_back(runCase(
        "1n ZeRO-2+CPU",
        paperExperiment(1, StrategyConfig::zeroOffloadCpu(2), billions)));
    reports.push_back(runCase(
        "1n ZeRO-3+NVMe",
        paperExperiment(1, StrategyConfig::zeroInfinityNvme(true),
                        billions)));

    std::cout << "\nWhat if the cluster only had 100 Gbps NICs?\n";
    {
        ExperimentConfig cfg =
            paperExperiment(2, StrategyConfig::zero(3), billions);
        cfg.cluster.node.roce_per_dir = 12.5 * units::GBps;
        reports.push_back(runCase("2n ZeRO-3 @100GbE", std::move(cfg)));
    }

    std::cout << "\nSummary:\n" << comparisonTable(reports);
    std::cout << "\nRule of thumb from the paper: consolidate into one "
                 "node with CPU offload\nwhen the inter-node fabric is "
                 "the bottleneck; reach for NVMe only when\nthe model "
                 "no longer fits in host memory.\n";
    return 0;
}
