/**
 * @file
 * NVMe placement explorer: sweep the paper's seven drive-placement
 * configurations (Fig. 14 / Table VI) for a model size of your
 * choosing and report throughput plus the xGMI / PCIe-NVME bandwidth
 * that explains it — then print the recommendation the paper arrives
 * at (avoid RAID0 volumes spanning sockets).
 *
 * Run:  build/examples/nvme_placement_explorer [billions]
 */

#include <cstdlib>
#include <iostream>

#include "core/presets.hh"
#include "core/report.hh"
#include "util/logging.hh"

using namespace dstrain;

int
main(int argc, char **argv)
{
    const double billions = argc > 1 ? std::atof(argv[1]) : 33.3;
    std::cout << "ZeRO-Infinity NVMe placement sweep @ " << billions
              << "B\n\n";

    TextTable table({"Config", "Description", "TFLOP/s", "Iter (s)",
                     "xGMI avg (GBps)", "PCIe-NVME avg (GBps)"});
    double best_tput = 0.0;
    char best_id = '?';

    for (const NvmePlacement &placement : allNvmePlacements()) {
        ExperimentConfig cfg = paperExperiment(
            1, StrategyConfig::zeroInfinityNvme(true), billions);
        cfg.placement = placement;
        cfg.iterations = 3;
        cfg.warmup = 1;
        Experiment exp(std::move(cfg));
        ExperimentReport r = exp.run();

        const auto &classes = tableIvClasses();
        double xgmi = 0.0;
        double pcie_nvme = 0.0;
        for (std::size_t i = 0; i < classes.size(); ++i) {
            if (classes[i] == LinkClass::Xgmi)
                xgmi = r.bandwidth.per_class[i].avg / units::GBps;
            if (classes[i] == LinkClass::PcieNvme)
                pcie_nvme = r.bandwidth.per_class[i].avg / units::GBps;
        }
        table.addRow({std::string(1, placement.id),
                      placement.description,
                      csprintf("%.1f", r.tflops),
                      csprintf("%.1f", r.iteration_time),
                      csprintf("%.2f", xgmi),
                      csprintf("%.2f", pcie_nvme)});
        if (r.tflops > best_tput) {
            best_tput = r.tflops;
            best_id = placement.id;
        }
    }

    std::cout << table << "\n"
              << "Best placement: configuration " << best_id << " ("
              << best_tput << " TFLOP/s).\n"
              << "Avoid RAID0 volumes whose members span CPU sockets — "
                 "the cross-socket\nstripe members ride the contended "
                 "IOD crossbar (paper Sec. V-E).\n";
    return 0;
}
