/**
 * @file
 * Quickstart: simulate training a GPT-2-like model with DeepSpeed
 * ZeRO-3 on one XE8545-class node and print the paper's headline
 * metrics — achieved model size, compute throughput, memory
 * composition and per-interconnect bandwidth.
 *
 * Run:  build/examples/quickstart [nodes] [zero_stage]
 */

#include <cstdlib>
#include <iostream>

#include "core/presets.hh"
#include "core/report.hh"
#include "telemetry/timeline.hh"

using namespace dstrain;

int
main(int argc, char **argv)
{
    const int nodes = argc > 1 ? std::atoi(argv[1]) : 1;
    const int stage = argc > 2 ? std::atoi(argv[2]) : 3;

    // 1. Describe the experiment: the paper's cluster, ZeRO at the
    //    requested stage, and "the largest model that fits".
    ExperimentConfig cfg = paperExperiment(
        nodes, StrategyConfig::zero(stage), /*billions=*/0.0);

    // 2. Run it.
    Experiment experiment(cfg);
    ExperimentReport report = experiment.run();

    // 3. Read the results.
    std::cout << "== dstrain quickstart ==\n"
              << summarizeReport(report) << "\n\n";

    std::cout << "Memory composition (aggregate):\n"
              << compositionTable({report}) << "\n";

    TextTable bw = makeBandwidthTable();
    addBandwidthRow(bw, report.bandwidth);
    bw.setTitle("Aggregate bidirectional per-node bandwidth (GBps):");
    std::cout << bw << "\n";

    std::cout << "Last-iteration timeline:\n"
              << renderTimeline(report.execution.spans,
                                cfg.cluster.totalGpus(),
                                report.execution.iteration_ends[
                                    report.execution.iteration_ends
                                        .size() - 2],
                                report.execution.measured_end);
    return 0;
}
