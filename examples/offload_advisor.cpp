/**
 * @file
 * Offload advisor: given a target model size and a node count, find
 * the *simplest* configuration that fits it and the *fastest* one —
 * walking the escalation ladder the paper establishes:
 *
 *   DDP -> ZeRO-1/2/3 -> Megatron-LM -> ZeRO-Offload (CPU) ->
 *   ZeRO-Infinity (NVMe).
 *
 * Run:  build/examples/offload_advisor [billions] [nodes]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/presets.hh"
#include "core/report.hh"
#include "util/logging.hh"
#include "memplan/capacity_solver.hh"

using namespace dstrain;

int
main(int argc, char **argv)
{
    const double billions = argc > 1 ? std::atof(argv[1]) : 8.9;
    const int nodes = argc > 2 ? std::atoi(argv[2]) : 1;

    const ClusterSpec cluster = xe8545Cluster(nodes);
    const TransformerConfig model =
        configForBillions(billions);

    std::cout << "Advising for " << billions << "B on " << nodes
              << " node(s): " << model.layers << " layers, "
              << formatParams(model.parameterCount()) << " params\n\n";

    // The escalation ladder, simplest first.
    std::vector<StrategyConfig> ladder = {
        StrategyConfig::ddp(),
        StrategyConfig::zero(1),
        StrategyConfig::zero(2),
        StrategyConfig::zero(3),
        paperMegatron(nodes),
        StrategyConfig::zeroOffloadCpu(1),
        StrategyConfig::zeroOffloadCpu(2),
        StrategyConfig::zeroInfinityNvme(false),
        StrategyConfig::zeroInfinityNvme(true),
    };

    std::vector<ExperimentReport> feasible;
    bool first_found = false;
    for (const StrategyConfig &s : ladder) {
        if (!fitsCluster(model, s, cluster, /*batch_per_gpu=*/16)) {
            std::cout << "  " << s.displayName()
                      << ": does not fit\n";
            continue;
        }
        ExperimentConfig cfg = paperExperiment(nodes, s, billions);
        cfg.iterations = 3;
        cfg.warmup = 1;
        Experiment exp(std::move(cfg));
        ExperimentReport r = exp.run();
        std::cout << "  " << summarizeReport(r);
        if (!first_found) {
            std::cout << "   <- simplest fit";
            first_found = true;
        }
        std::cout << "\n";
        feasible.push_back(std::move(r));
    }

    if (feasible.empty()) {
        std::cout << "\nNothing fits — add nodes, drives, or host "
                     "memory.\n";
        return 1;
    }

    const ExperimentReport *fastest = &feasible.front();
    for (const ExperimentReport &r : feasible)
        if (r.tflops > fastest->tflops)
            fastest = &r;

    std::cout << "\nRecommendation: "
              << fastest->strategy.displayName() << " ("
              << csprintf("%.1f", fastest->tflops)
              << " TFLOP/s). Prefer the plainest strategy that fits; "
                 "offload only\nbuys you capacity, never speed "
                 "(paper Fig. 5 caption).\n";
    return 0;
}
