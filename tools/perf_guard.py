#!/usr/bin/env python3
"""Fail CI when the flow-scheduler micro-bench regresses.

Compares one or more fresh micro_flow_scheduler JSONL runs against the
committed baseline and exits non-zero when any guarded scenario's
events/sec falls more than --threshold (default 30%) below baseline.

CI runners (and the capture machine) are single-vCPU boxes that other
tenants time-share, so raw wall-clock is bimodal: the same binary can
read 2x slower under a noisy neighbor. Two defenses:

  * Best-of-N: pass several run files; each scenario is scored on its
    best run (the run least disturbed by external load).

  * Machine normalization: the event_queue_churn scenario is a pure
    CPU canary — no solver code under test dominates it — so the
    ratio of its current to baseline ops/sec estimates the machine
    speed delta, and guarded scenarios are scored after dividing that
    factor out. A slow machine slows the canary and the scenario
    together; a real regression slows only the scenario.

Usage:
  perf_guard.py --baseline bench/baselines/micro_flow_scheduler.jsonl \
      run1.jsonl [run2.jsonl ...]
"""

import argparse
import json
import sys

# Scenario -> JSON field guarded. event_queue_churn is the canary and
# the sweep comparison measures thread scaling, not solver speed, so
# neither is guarded directly.
GUARDED_METRIC = "events_per_sec"
CANARY_SCENARIO = "event_queue_churn"
CANARY_METRIC = "ops_per_sec"
SKIPPED_SCENARIOS = {CANARY_SCENARIO, "sweep_jobs"}


def scenario_key(rec):
    """Identity of one bench line: scenario plus solver mode (the
    region and global passes of one scenario are separate series)."""
    key = rec.get("scenario")
    if key is None:
        return None
    solver = rec.get("solver")
    return f"{key}/{solver}" if solver else key


def load_jsonl(path):
    recs = {}
    canary = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            key = scenario_key(rec)
            if key is None:
                continue
            if rec.get("scenario") == CANARY_SCENARIO:
                canary = rec.get(CANARY_METRIC)
            elif rec.get("scenario") not in SKIPPED_SCENARIOS:
                metric = rec.get(GUARDED_METRIC)
                if metric is not None:
                    recs[key] = float(metric)
    return recs, canary


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSONL")
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max fractional regression (default 0.30)")
    ap.add_argument("runs", nargs="+",
                    help="fresh JSONL files (best-of-N per scenario)")
    args = ap.parse_args()

    base, base_canary = load_jsonl(args.baseline)
    if not base:
        print(f"perf_guard: no guarded scenarios in {args.baseline}",
              file=sys.stderr)
        return 2

    best = {}
    best_canary = None
    for path in args.runs:
        recs, canary = load_jsonl(path)
        for key, val in recs.items():
            if key not in best or val > best[key]:
                best[key] = val
        if canary is not None and (best_canary is None
                                   or canary > best_canary):
            best_canary = canary

    machine = 1.0
    if base_canary and best_canary:
        machine = best_canary / base_canary
        print(f"machine factor (churn canary): {machine:.3f} "
              f"({best_canary:.3g} now vs {base_canary:.3g} baseline)")

    failures = []
    for key, base_val in sorted(base.items()):
        if key not in best:
            print(f"MISSING  {key}: in baseline but not in any run")
            failures.append(key)
            continue
        normalized = best[key] / machine
        ratio = normalized / base_val
        status = "ok" if ratio >= 1.0 - args.threshold else "REGRESSED"
        print(f"{status:9s} {key}: {best[key]:.1f} raw, "
              f"{normalized:.1f} normalized vs {base_val:.1f} baseline "
              f"({ratio:.2f}x)")
        if status != "ok":
            failures.append(key)

    for key in sorted(set(best) - set(base)):
        print(f"new      {key}: {best[key]:.1f} (no baseline; skipped)")

    if failures:
        print(f"perf_guard: {len(failures)} scenario(s) regressed more "
              f"than {args.threshold:.0%}: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("perf_guard: all scenarios within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
