/**
 * @file
 * The dstrain command-line tool: run one simulated training
 * experiment from flags and print (or export) the paper-style
 * metrics. The scriptable face of the library.
 *
 *   dstrain --nodes 2 --strategy zero3 --model 6.6
 *   dstrain --strategy zero2-cpu --model 11.4 --energy
 *   dstrain --strategy zero3-nvme --placement G --trace out.json
 *   dstrain --strategy megatron --tp 4 --csv
 *   dstrain --nodes 2 --faults 'degrade@2+1:roce:0.25'
 *
 * The `sweep` subcommand runs a whole family of configurations
 * through the parallel SweepRunner:
 *
 *   dstrain sweep --nodes 1,2 --strategies zero1,zero2,zero3 --jobs 4
 *   dstrain sweep --strategies all --jobs 8 --csv
 *
 * The `faults` subcommand is a guided demo of the fault-injection
 * subsystem: it runs the same experiment clean and faulted and
 * prints the per-link impact table plus the RoCE rate sparkline.
 *
 *   dstrain faults
 *   dstrain faults --spec 'flap@2+0.3:roce/n1' --nodes 2
 *
 * The `recovery` subcommand demos checkpoint/restore under hard
 * failures: the same experiment clean, checkpointed, and
 * checkpointed with a nodedown, with the goodput table.
 *
 *   dstrain recovery
 *   dstrain recovery --checkpoint 2i --policy elastic
 */

#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/config_args.hh"
#include "core/energy.hh"
#include "core/presets.hh"
#include "strategies/strategy.hh"
#include "core/report.hh"
#include "core/sweep_runner.hh"
#include "telemetry/probe.hh"
#include "telemetry/timeline.hh"
#include "engine/trace_export.hh"
#include "util/args.hh"
#include "util/logging.hh"

namespace dstrain {
namespace {

/** Print each config error on its own line to stderr. */
void
printConfigErrors(const std::vector<ConfigError> &errors)
{
    std::fprintf(stderr, "dstrain: invalid configuration:\n%s\n",
                 formatConfigErrors(errors).c_str());
}

/** Split a comma-separated list, skipping empty items. */
std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> items;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

/** The `sweep --strategies all` lineup: every registered name. */
std::string
allStrategiesCsv()
{
    std::string csv;
    for (const std::string &name : Strategy::names()) {
        if (!csv.empty())
            csv += ",";
        csv += name;
    }
    return csv;
}

int
runSweep(int argc, const char *const *argv)
{
    ArgParser args(
        "dstrain sweep",
        "run a family of experiments through the parallel sweep "
        "runner");
    args.addOption("nodes", "1", "comma-separated node counts");
    args.addOption(
        "strategies", "ddp,megatron,zero1,zero2,zero3",
        "comma-separated strategy names (see the single-run help), "
        "or 'all'");
    args.addOption("model", "0",
                   "model size in billions (0 = largest that fits)");
    args.addOption("batch", "16", "per-GPU batch size");
    args.addOption("iterations", "4", "iterations to simulate");
    args.addOption(
        "faults", "",
        "fault spec applied to every sweep point (see dstrain --help)");
    args.addOption("jobs", "0",
                   "worker threads (0 = one per hardware thread)");
    args.addFlag("csv", "emit the bandwidth rows as CSV");
    args.addFlag("quiet", "suppress the progress ticker");
    if (!args.parse(argc, argv))
        return 1;

    std::string strategy_csv = args.get("strategies");
    if (strategy_csv == "all")
        strategy_csv = allStrategiesCsv();

    FaultPlan faults;
    if (!args.get("faults").empty()) {
        std::vector<ConfigError> errors;
        faults = parseFaultSpec(args.get("faults"), &errors);
        if (!errors.empty()) {
            printConfigErrors(errors);
            return 1;
        }
    }

    std::vector<ExperimentConfig> configs;
    std::vector<std::string> names;
    for (const std::string &nodes_str : splitList(args.get("nodes"))) {
        const int nodes = std::atoi(nodes_str.c_str());
        if (nodes < 1) {
            std::fprintf(stderr, "dstrain: bad node count '%s'\n",
                         nodes_str.c_str());
            return 1;
        }
        for (const std::string &name : splitList(strategy_csv)) {
            const auto strategy = parseStrategyName(name);
            if (!strategy) {
                std::fprintf(stderr,
                             "dstrain: unknown strategy '%s'\n%s",
                             name.c_str(), args.helpText().c_str());
                return 1;
            }
            ExperimentConfig cfg = paperExperiment(
                nodes, *strategy, args.getDouble("model"));
            cfg.batch_per_gpu = args.getInt("batch");
            // Executor needs at least one measured (post-warmup)
            // iteration.
            cfg.iterations =
                std::max(cfg.warmup + 1, args.getInt("iterations"));
            cfg.faults = faults;
            names.push_back(csprintf("%dn %s", nodes,
                                     strategy->displayName().c_str()));
            configs.push_back(std::move(cfg));
        }
    }
    if (configs.empty()) {
        std::fprintf(stderr, "dstrain: empty sweep\n");
        return 1;
    }

    const bool quiet = args.getFlag("quiet");
    SweepRunner runner(args.getInt("jobs"));
    inform("sweep: %zu points on %d worker(s)", configs.size(),
           runner.jobs());
    const std::vector<ExperimentReport> reports = runner.run(
        std::move(configs),
        [&](std::size_t done, std::size_t total, std::size_t index) {
            if (!quiet) {
                inform("sweep: [%zu/%zu] %s", done, total,
                       names[index].c_str());
            }
        });

    std::cout << comparisonTable(reports) << "\n"
              << compositionTable(reports) << "\n";

    TextTable bw = makeBandwidthTable();
    for (std::size_t i = 0; i < reports.size(); ++i) {
        BandwidthRow row = reports[i].bandwidth;
        row.config = names[i];
        addBandwidthRow(bw, row);
    }
    if (args.getFlag("csv")) {
        std::cout << bw.renderCsv();
    } else {
        bw.setTitle(
            "Aggregate bidirectional per-node bandwidth (GBps):");
        std::cout << bw;
    }
    return 0;
}

int
runFaultsDemo(int argc, const char *const *argv)
{
    ArgParser args(
        "dstrain faults",
        "fault-injection demo: run the same experiment clean and "
        "faulted, print the per-link impact");
    args.addOption("nodes", "2", "number of compute nodes");
    args.addOption("strategy", "zero3", strategyNameHelp());
    args.addOption("model", "0",
                   "model size in billions (0 = largest that fits)");
    args.addOption("iterations", "6", "iterations to simulate");
    args.addOption(
        "spec", "degrade@2+1.5:roce:0.25",
        "fault spec <kind>@<begin>[+<duration>]:<target>[:<fraction>]; "
        "kinds: degrade, flap, nicdown, straggler, nvme");
    if (!args.parse(argc, argv))
        return 1;

    const auto strategy = parseStrategyName(args.get("strategy"));
    if (!strategy) {
        std::fprintf(stderr, "dstrain: unknown strategy '%s'\n%s",
                     args.get("strategy").c_str(),
                     args.helpText().c_str());
        return 1;
    }

    std::vector<ConfigError> errors;
    FaultPlan plan = parseFaultSpec(args.get("spec"), &errors);
    if (!errors.empty()) {
        printConfigErrors(errors);
        return 1;
    }

    ExperimentConfig cfg = paperExperiment(
        args.getInt("nodes"), *strategy, args.getDouble("model"));
    cfg.iterations = std::max(cfg.warmup + 1, args.getInt("iterations"));
    // Retain segments so we can draw the rate sparkline afterwards.
    cfg.telemetry.retain_segments = true;

    inform("faults: clean run...");
    const ExperimentReport clean = runExperiment(cfg);

    // Fault begin times are absolute simulation seconds; unless the
    // user pinned a spec, aim the default fault at the middle of the
    // measured window the clean run just revealed.
    if (!args.provided("spec")) {
        const SimTime b = clean.execution.measured_begin;
        const SimTime w = clean.execution.measured_end - b;
        plan.events[0].begin = b + 0.3 * w;
        plan.events[0].duration = 0.3 * w;
    }

    inform("faults: faulted run (%s)...", plan.str().c_str());
    cfg.faults = plan;
    Experiment faulted(std::move(cfg));
    const ExperimentReport report = faulted.run();

    std::cout << "\nclean:   " << summarizeReport(clean)
              << "\nfaulted: " << summarizeReport(report) << "\n\n";

    TextTable impact = faultImpactTable(report);
    impact.setTitle("Per-fault impact:");
    std::cout << impact << "\n";

    // The Fig. 4-style view: per-node RoCE rate over the measured
    // window, so the degraded stretch is visible at a glance.
    const SimTime begin = report.execution.measured_begin;
    const SimTime end = report.execution.measured_end;
    for (int n = 0; n < faulted.cluster().nodeCount(); ++n) {
        const BandwidthSeries series = probeClassBandwidth(
            faulted.cluster().topology(), LinkClass::Roce, begin, end,
            faulted.config().telemetry.bucket, n);
        std::cout << csprintf("n%d roce |", n)
                  << sparkline(series.values) << "|\n";
    }
    std::cout << csprintf(
        "          %s .. %s (reroutes: %llu)\n",
        formatTime(begin).c_str(), formatTime(end).c_str(),
        static_cast<unsigned long long>(
            faulted.transfers().rerouteCount()));
    return 0;
}

int
runRecoveryDemo(int argc, const char *const *argv)
{
    ArgParser args(
        "dstrain recovery",
        "checkpoint/restore demo: run the same experiment clean, "
        "checkpointed, and checkpointed under a hard failure; print "
        "the goodput/recovery table");
    args.addOption("nodes", "2", "number of compute nodes");
    args.addOption("strategy", "zero3", strategyNameHelp());
    args.addOption("model", "0",
                   "model size in billions (0 = largest that fits)");
    args.addOption("iterations", "8", "iterations to simulate");
    args.addOption("checkpoint", "2i",
                   "checkpoint policy: '<seconds>[s]', '<k>i'");
    args.addOption("policy", "restart",
                   "recovery policy: restart | elastic");
    args.addOption(
        "fault", "nodedown@0:n1",
        "hard-fault spec (aimed at mid-window unless provided)");
    if (!args.parse(argc, argv))
        return 1;

    const auto strategy = parseStrategyName(args.get("strategy"));
    if (!strategy) {
        std::fprintf(stderr, "dstrain: unknown strategy '%s'\n%s",
                     args.get("strategy").c_str(),
                     args.helpText().c_str());
        return 1;
    }

    std::vector<ConfigError> errors;
    const CheckpointPolicy ckpt =
        parseCheckpointSpec(args.get("checkpoint"), &errors);
    RecoveryPolicyKind policy = RecoveryPolicyKind::Restart;
    if (!parseRecoveryPolicy(args.get("policy"), &policy)) {
        errors.push_back(
            {"policy", csprintf("unknown recovery policy '%s'",
                                args.get("policy").c_str())});
    }
    FaultPlan plan = parseFaultSpec(args.get("fault"), &errors);
    if (!errors.empty()) {
        printConfigErrors(errors);
        return 1;
    }

    ExperimentConfig cfg = paperExperiment(
        args.getInt("nodes"), *strategy, args.getDouble("model"));
    cfg.iterations = std::max(cfg.warmup + 1, args.getInt("iterations"));

    inform("recovery: clean run...");
    const ExperimentReport clean = runExperiment(cfg);

    inform("recovery: checkpointed run (policy %s)...",
           ckpt.str().c_str());
    ExperimentConfig ckpt_cfg = cfg;
    ckpt_cfg.recovery.checkpoint = ckpt;
    const ExperimentReport checkpointed = runExperiment(ckpt_cfg);

    // Aim the default fault at the middle of the measured window the
    // clean run just revealed (begin times are absolute seconds).
    if (!args.provided("fault")) {
        const SimTime b = clean.execution.measured_begin;
        plan.events[0].begin =
            b + 0.5 * (clean.execution.measured_end - b);
    }

    inform("recovery: faulted run (%s, %s policy)...",
           plan.str().c_str(), recoveryPolicyName(policy));
    ExperimentConfig fault_cfg = cfg;
    fault_cfg.recovery.checkpoint = ckpt;
    fault_cfg.recovery.policy = policy;
    fault_cfg.faults = plan;
    const ExperimentReport recovered = runExperiment(fault_cfg);

    std::cout << "\nclean:        " << summarizeReport(clean)
              << "\ncheckpointed: " << summarizeReport(checkpointed)
              << "\nrecovered:    " << summarizeReport(recovered)
              << "\n\n";
    TextTable table = recoveryTable({clean, checkpointed, recovered});
    table.setTitle("Goodput under failures:");
    std::cout << table << "\n"
              << "recovered:    " << summarizeRecovery(recovered.recovery)
              << "\n";
    return 0;
}

int
runCli(int argc, const char *const *argv)
{
    ArgParser args(
        "dstrain",
        "simulate distributed LLM training on a configurable GPU "
        "cluster (default: XE8545 nodes behind one switch)");
    addExperimentOptions(args);
    args.addOption("trace", "",
                   "write a chrome://tracing JSON of the final "
                   "iteration to this path");
    args.addFlag("telemetry-stats",
                 "print the telemetry-engine and flow-scheduler "
                 "counters");
    args.addFlag("csv", "emit the bandwidth row as CSV");
    args.addFlag("energy", "print the energy-model estimate");
    args.addFlag("timeline", "print the ASCII iteration timeline");
    if (!args.parse(argc, argv))
        return 1;

    ParsedExperiment parsed = experimentFromArgs(args);
    if (!parsed.ok()) {
        printConfigErrors(parsed.errors);
        return 1;
    }

    Experiment experiment(std::move(parsed.config));
    const ExperimentReport report = experiment.run();
    const ExperimentConfig &used = experiment.config();

    std::cout << summarizeReport(report) << "\n\n"
              << compositionTable({report}) << "\n";

    if (args.getFlag("csv")) {
        TextTable bw = makeBandwidthTable();
        addBandwidthRow(bw, report.bandwidth);
        std::cout << bw.renderCsv();
    } else {
        TextTable bw = makeBandwidthTable();
        addBandwidthRow(bw, report.bandwidth);
        bw.setTitle(
            "Aggregate bidirectional per-node bandwidth (GBps):");
        std::cout << bw;
    }

    if (!report.collectives.empty()) {
        TextTable usage = collectiveUsageTable(report);
        usage.setTitle("Collective usage:");
        std::cout << "\n" << usage;
    }

    if (!report.faults.empty()) {
        TextTable impact = faultImpactTable(report);
        impact.setTitle("Per-fault impact:");
        std::cout << "\n" << impact;
    }

    if (report.recovery.active) {
        std::cout << "\nrecovery: " << summarizeRecovery(report.recovery)
                  << "\n";
    }

    if (report.resilience.any())
        std::cout << "\n" << summarizeResilience(report.resilience)
                  << "\n";

    if (args.getFlag("telemetry-stats")) {
        std::cout << "\n" << summarizeTelemetry(report.telemetry) << "\n"
                  << summarizeScheduler(report.scheduler) << "\n";
    }

    const auto &ends = report.execution.iteration_ends;
    const SimTime last_begin = ends[ends.size() - 2];
    if (args.getFlag("timeline")) {
        std::cout << "\n"
                  << renderTimeline(report.execution.spans,
                                    used.cluster.totalGpus(),
                                    last_begin,
                                    report.execution.measured_end);
    }
    if (args.getFlag("energy")) {
        std::cout << "\nEnergy: "
                  << summarizeEnergy(estimateEnergy(report, used))
                  << "\n";
    }
    if (!args.get("trace").empty()) {
        TraceOptions topts;
        topts.begin = last_begin;
        topts.end = report.execution.measured_end;
        if (writeChromeTrace(args.get("trace"),
                             report.execution.spans, topts)) {
            std::cout << "\ntrace written to " << args.get("trace")
                      << " (open in chrome://tracing)\n";
        }
    }
    return 0;
}

} // namespace
} // namespace dstrain

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "sweep")
        return dstrain::runSweep(argc - 1, argv + 1);
    if (argc > 1 && std::string(argv[1]) == "faults")
        return dstrain::runFaultsDemo(argc - 1, argv + 1);
    if (argc > 1 && std::string(argv[1]) == "recovery")
        return dstrain::runRecoveryDemo(argc - 1, argv + 1);
    return dstrain::runCli(argc, argv);
}
