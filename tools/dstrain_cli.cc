/**
 * @file
 * The dstrain command-line tool: run one simulated training
 * experiment from flags and print (or export) the paper-style
 * metrics. The scriptable face of the library.
 *
 *   dstrain --nodes 2 --strategy zero3 --model 6.6
 *   dstrain --strategy zero2-cpu --model 11.4 --energy
 *   dstrain --strategy zero3-nvme --placement G --trace out.json
 *   dstrain --strategy megatron --tp 4 --csv
 */

#include <cstdio>
#include <iostream>

#include "core/energy.hh"
#include "core/presets.hh"
#include "core/report.hh"
#include "telemetry/timeline.hh"
#include "engine/trace_export.hh"
#include "util/args.hh"

namespace dstrain {
namespace {

/** Map the CLI strategy name to a configuration. */
std::optional<StrategyConfig>
parseStrategy(const std::string &name, int tp, int pp)
{
    if (name == "ddp")
        return StrategyConfig::ddp();
    if (name == "megatron")
        return StrategyConfig::megatron(tp > 0 ? tp : 4,
                                        pp > 0 ? pp : 1);
    if (name == "zero1")
        return tp > 1 ? StrategyConfig::hybridZero(1, tp)
                      : StrategyConfig::zero(1);
    if (name == "zero2")
        return tp > 1 ? StrategyConfig::hybridZero(2, tp)
                      : StrategyConfig::zero(2);
    if (name == "zero3")
        return StrategyConfig::zero(3);
    if (name == "zero1-cpu")
        return StrategyConfig::zeroOffloadCpu(1);
    if (name == "zero2-cpu")
        return StrategyConfig::zeroOffloadCpu(2);
    if (name == "zero3-cpu")
        return StrategyConfig::zeroOffloadCpu(3);
    if (name == "zero3-nvme")
        return StrategyConfig::zeroInfinityNvme(false);
    if (name == "zero3-nvme-params")
        return StrategyConfig::zeroInfinityNvme(true);
    return std::nullopt;
}

int
runCli(int argc, const char *const *argv)
{
    ArgParser args(
        "dstrain",
        "simulate distributed LLM training on an XE8545-class cluster");
    args.addOption("nodes", "1", "number of compute nodes");
    args.addOption(
        "strategy", "zero3",
        "ddp | megatron | zero1 | zero2 | zero3 | zero1-cpu | "
        "zero2-cpu | zero3-cpu | zero3-nvme | zero3-nvme-params");
    args.addOption("model", "0",
                   "model size in billions (0 = largest that fits)");
    args.addOption("tp", "0", "tensor-parallel degree (megatron/hybrid)");
    args.addOption("pp", "0", "pipeline-parallel degree (megatron)");
    args.addOption("batch", "16", "per-GPU batch size");
    args.addOption("iterations", "4", "iterations to simulate");
    args.addOption("placement", "B",
                   "NVMe drive placement (A-G paper, H extension)");
    args.addOption("trace", "",
                   "write a chrome://tracing JSON of the final "
                   "iteration to this path");
    args.addFlag("csv", "emit the bandwidth row as CSV");
    args.addFlag("energy", "print the energy-model estimate");
    args.addFlag("timeline", "print the ASCII iteration timeline");
    args.addFlag("no-serdes",
                 "disable the IOD SerDes contention model (ablation)");
    if (!args.parse(argc, argv))
        return 1;

    const auto strategy = parseStrategy(args.get("strategy"),
                                        args.getInt("tp"),
                                        args.getInt("pp"));
    if (!strategy) {
        std::fprintf(stderr, "dstrain: unknown strategy '%s'\n%s",
                     args.get("strategy").c_str(),
                     args.helpText().c_str());
        return 1;
    }

    ExperimentConfig cfg = paperExperiment(
        args.getInt("nodes"), *strategy, args.getDouble("model"));
    cfg.batch_per_gpu = args.getInt("batch");
    cfg.iterations = std::max(2, args.getInt("iterations"));
    cfg.placement = nvmePlacementConfig(args.get("placement")[0]);
    cfg.cluster.node.model_serdes_contention =
        !args.getFlag("no-serdes");

    Experiment experiment(std::move(cfg));
    const ExperimentReport report = experiment.run();
    const ExperimentConfig &used = experiment.config();

    std::cout << summarizeReport(report) << "\n\n"
              << compositionTable({report}) << "\n";

    if (args.getFlag("csv")) {
        TextTable bw = makeBandwidthTable();
        addBandwidthRow(bw, report.bandwidth);
        std::cout << bw.renderCsv();
    } else {
        TextTable bw = makeBandwidthTable();
        addBandwidthRow(bw, report.bandwidth);
        bw.setTitle(
            "Aggregate bidirectional per-node bandwidth (GBps):");
        std::cout << bw;
    }

    const auto &ends = report.execution.iteration_ends;
    const SimTime last_begin = ends[ends.size() - 2];
    if (args.getFlag("timeline")) {
        std::cout << "\n"
                  << renderTimeline(report.execution.spans,
                                    used.cluster.totalGpus(),
                                    last_begin,
                                    report.execution.measured_end);
    }
    if (args.getFlag("energy")) {
        std::cout << "\nEnergy: "
                  << summarizeEnergy(estimateEnergy(report, used))
                  << "\n";
    }
    if (!args.get("trace").empty()) {
        TraceOptions topts;
        topts.begin = last_begin;
        topts.end = report.execution.measured_end;
        if (writeChromeTrace(args.get("trace"),
                             report.execution.spans, topts)) {
            std::cout << "\ntrace written to " << args.get("trace")
                      << " (open in chrome://tracing)\n";
        }
    }
    return 0;
}

} // namespace
} // namespace dstrain

int
main(int argc, char **argv)
{
    return dstrain::runCli(argc, argv);
}
