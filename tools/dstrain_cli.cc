/**
 * @file
 * The dstrain command-line tool: run one simulated training
 * experiment from flags and print (or export) the paper-style
 * metrics. The scriptable face of the library.
 *
 *   dstrain --nodes 2 --strategy zero3 --model 6.6
 *   dstrain --strategy zero2-cpu --model 11.4 --energy
 *   dstrain --strategy zero3-nvme --placement G --trace out.json
 *   dstrain --strategy megatron --tp 4 --csv
 *
 * The `sweep` subcommand runs a whole family of configurations
 * through the parallel SweepRunner:
 *
 *   dstrain sweep --nodes 1,2 --strategies zero1,zero2,zero3 --jobs 4
 *   dstrain sweep --strategies all --jobs 8 --csv
 */

#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/energy.hh"
#include "core/presets.hh"
#include "core/report.hh"
#include "core/sweep_runner.hh"
#include "telemetry/timeline.hh"
#include "engine/trace_export.hh"
#include "util/args.hh"
#include "util/logging.hh"

namespace dstrain {
namespace {

/** Map the CLI strategy name to a configuration. */
std::optional<StrategyConfig>
parseStrategy(const std::string &name, int tp, int pp)
{
    if (name == "ddp")
        return StrategyConfig::ddp();
    if (name == "megatron")
        return StrategyConfig::megatron(tp > 0 ? tp : 4,
                                        pp > 0 ? pp : 1);
    if (name == "zero1")
        return tp > 1 ? StrategyConfig::hybridZero(1, tp)
                      : StrategyConfig::zero(1);
    if (name == "zero2")
        return tp > 1 ? StrategyConfig::hybridZero(2, tp)
                      : StrategyConfig::zero(2);
    if (name == "zero3")
        return StrategyConfig::zero(3);
    if (name == "zero1-cpu")
        return StrategyConfig::zeroOffloadCpu(1);
    if (name == "zero2-cpu")
        return StrategyConfig::zeroOffloadCpu(2);
    if (name == "zero3-cpu")
        return StrategyConfig::zeroOffloadCpu(3);
    if (name == "zero3-nvme")
        return StrategyConfig::zeroInfinityNvme(false);
    if (name == "zero3-nvme-params")
        return StrategyConfig::zeroInfinityNvme(true);
    return std::nullopt;
}

/** Split a comma-separated list, skipping empty items. */
std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> items;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

/** The default `sweep` lineup: every named single-degree strategy. */
const char *const kAllStrategies =
    "ddp,megatron,zero1,zero2,zero3,zero1-cpu,zero2-cpu,zero3-cpu,"
    "zero3-nvme,zero3-nvme-params";

int
runSweep(int argc, const char *const *argv)
{
    ArgParser args(
        "dstrain sweep",
        "run a family of experiments through the parallel sweep "
        "runner");
    args.addOption("nodes", "1", "comma-separated node counts");
    args.addOption(
        "strategies", "ddp,megatron,zero1,zero2,zero3",
        "comma-separated strategy names (see the single-run help), "
        "or 'all'");
    args.addOption("model", "0",
                   "model size in billions (0 = largest that fits)");
    args.addOption("batch", "16", "per-GPU batch size");
    args.addOption("iterations", "4", "iterations to simulate");
    args.addOption("jobs", "0",
                   "worker threads (0 = one per hardware thread)");
    args.addFlag("csv", "emit the bandwidth rows as CSV");
    args.addFlag("quiet", "suppress the progress ticker");
    if (!args.parse(argc, argv))
        return 1;

    std::string strategy_csv = args.get("strategies");
    if (strategy_csv == "all")
        strategy_csv = kAllStrategies;

    std::vector<ExperimentConfig> configs;
    std::vector<std::string> names;
    for (const std::string &nodes_str : splitList(args.get("nodes"))) {
        const int nodes = std::atoi(nodes_str.c_str());
        if (nodes < 1) {
            std::fprintf(stderr, "dstrain: bad node count '%s'\n",
                         nodes_str.c_str());
            return 1;
        }
        for (const std::string &name : splitList(strategy_csv)) {
            const auto strategy = parseStrategy(name, 0, 0);
            if (!strategy) {
                std::fprintf(stderr,
                             "dstrain: unknown strategy '%s'\n%s",
                             name.c_str(), args.helpText().c_str());
                return 1;
            }
            ExperimentConfig cfg = paperExperiment(
                nodes, *strategy, args.getDouble("model"));
            cfg.batch_per_gpu = args.getInt("batch");
            // Executor needs at least one measured (post-warmup)
            // iteration.
            cfg.iterations =
                std::max(cfg.warmup + 1, args.getInt("iterations"));
            names.push_back(csprintf("%dn %s", nodes,
                                     strategy->displayName().c_str()));
            configs.push_back(std::move(cfg));
        }
    }
    if (configs.empty()) {
        std::fprintf(stderr, "dstrain: empty sweep\n");
        return 1;
    }

    const bool quiet = args.getFlag("quiet");
    SweepRunner runner(args.getInt("jobs"));
    inform("sweep: %zu points on %d worker(s)", configs.size(),
           runner.jobs());
    const std::vector<ExperimentReport> reports = runner.run(
        std::move(configs),
        [&](std::size_t done, std::size_t total, std::size_t index) {
            if (!quiet) {
                inform("sweep: [%zu/%zu] %s", done, total,
                       names[index].c_str());
            }
        });

    std::cout << comparisonTable(reports) << "\n"
              << compositionTable(reports) << "\n";

    TextTable bw = makeBandwidthTable();
    for (std::size_t i = 0; i < reports.size(); ++i) {
        BandwidthRow row = reports[i].bandwidth;
        row.config = names[i];
        addBandwidthRow(bw, row);
    }
    if (args.getFlag("csv")) {
        std::cout << bw.renderCsv();
    } else {
        bw.setTitle(
            "Aggregate bidirectional per-node bandwidth (GBps):");
        std::cout << bw;
    }
    return 0;
}

int
runCli(int argc, const char *const *argv)
{
    ArgParser args(
        "dstrain",
        "simulate distributed LLM training on an XE8545-class cluster");
    args.addOption("nodes", "1", "number of compute nodes");
    args.addOption(
        "strategy", "zero3",
        "ddp | megatron | zero1 | zero2 | zero3 | zero1-cpu | "
        "zero2-cpu | zero3-cpu | zero3-nvme | zero3-nvme-params");
    args.addOption("model", "0",
                   "model size in billions (0 = largest that fits)");
    args.addOption("tp", "0", "tensor-parallel degree (megatron/hybrid)");
    args.addOption("pp", "0", "pipeline-parallel degree (megatron)");
    args.addOption("batch", "16", "per-GPU batch size");
    args.addOption("iterations", "4", "iterations to simulate");
    args.addOption("placement", "B",
                   "NVMe drive placement (A-G paper, H extension)");
    args.addOption("trace", "",
                   "write a chrome://tracing JSON of the final "
                   "iteration to this path");
    args.addOption("bucket", "0.1",
                   "telemetry sampling bucket in seconds");
    args.addFlag("retain-segments",
                 "keep the full rate-log history instead of the "
                 "streaming bucket accumulators (more memory)");
    args.addFlag("telemetry-stats",
                 "print the telemetry-engine counters");
    args.addFlag("csv", "emit the bandwidth row as CSV");
    args.addFlag("energy", "print the energy-model estimate");
    args.addFlag("timeline", "print the ASCII iteration timeline");
    args.addFlag("no-serdes",
                 "disable the IOD SerDes contention model (ablation)");
    if (!args.parse(argc, argv))
        return 1;

    const auto strategy = parseStrategy(args.get("strategy"),
                                        args.getInt("tp"),
                                        args.getInt("pp"));
    if (!strategy) {
        std::fprintf(stderr, "dstrain: unknown strategy '%s'\n%s",
                     args.get("strategy").c_str(),
                     args.helpText().c_str());
        return 1;
    }

    ExperimentConfig cfg = paperExperiment(
        args.getInt("nodes"), *strategy, args.getDouble("model"));
    cfg.batch_per_gpu = args.getInt("batch");
    // Executor needs at least one measured (post-warmup) iteration.
    cfg.iterations = std::max(cfg.warmup + 1, args.getInt("iterations"));
    cfg.placement = nvmePlacementConfig(args.get("placement")[0]);
    cfg.cluster.node.model_serdes_contention =
        !args.getFlag("no-serdes");
    if (args.getDouble("bucket") <= 0.0) {
        std::fprintf(stderr, "dstrain: --bucket must be positive\n");
        return 1;
    }
    cfg.telemetry.bucket = args.getDouble("bucket");
    cfg.telemetry.retain_segments = args.getFlag("retain-segments");

    Experiment experiment(std::move(cfg));
    const ExperimentReport report = experiment.run();
    const ExperimentConfig &used = experiment.config();

    std::cout << summarizeReport(report) << "\n\n"
              << compositionTable({report}) << "\n";

    if (args.getFlag("csv")) {
        TextTable bw = makeBandwidthTable();
        addBandwidthRow(bw, report.bandwidth);
        std::cout << bw.renderCsv();
    } else {
        TextTable bw = makeBandwidthTable();
        addBandwidthRow(bw, report.bandwidth);
        bw.setTitle(
            "Aggregate bidirectional per-node bandwidth (GBps):");
        std::cout << bw;
    }

    if (args.getFlag("telemetry-stats"))
        std::cout << "\n" << summarizeTelemetry(report.telemetry) << "\n";

    const auto &ends = report.execution.iteration_ends;
    const SimTime last_begin = ends[ends.size() - 2];
    if (args.getFlag("timeline")) {
        std::cout << "\n"
                  << renderTimeline(report.execution.spans,
                                    used.cluster.totalGpus(),
                                    last_begin,
                                    report.execution.measured_end);
    }
    if (args.getFlag("energy")) {
        std::cout << "\nEnergy: "
                  << summarizeEnergy(estimateEnergy(report, used))
                  << "\n";
    }
    if (!args.get("trace").empty()) {
        TraceOptions topts;
        topts.begin = last_begin;
        topts.end = report.execution.measured_end;
        if (writeChromeTrace(args.get("trace"),
                             report.execution.spans, topts)) {
            std::cout << "\ntrace written to " << args.get("trace")
                      << " (open in chrome://tracing)\n";
        }
    }
    return 0;
}

} // namespace
} // namespace dstrain

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "sweep")
        return dstrain::runSweep(argc - 1, argv + 1);
    return dstrain::runCli(argc, argv);
}
